#include "storage/warm_file.h"

#include <cstring>

#include "storage/format_util.h"
#include "storage/io_util.h"

namespace fairclique {
namespace storage {

namespace {

constexpr char kMagic[4] = {'F', 'C', 'W', '1'};
constexpr uint32_t kFormatVersion = 1;

Status Bad(const std::string& path, const std::string& what) {
  return Status::Corruption("warm file " + path + ": " + what);
}

}  // namespace

Status SaveWarmFile(const std::string& path,
                    std::span<const WarmEntry> entries) {
  std::string buf;
  buf.append(kMagic, 4);
  PutU32(&buf, kFormatVersion);
  PutU32(&buf, static_cast<uint32_t>(entries.size()));
  for (const WarmEntry& e : entries) {
    PutU32(&buf, static_cast<uint32_t>(e.key.size()));
    buf += e.key;
    PutU64(&buf, e.fingerprint);
    buf.push_back(e.has_params ? 1 : 0);
    PutU32(&buf, static_cast<uint32_t>(e.params.k));
    PutU32(&buf, static_cast<uint32_t>(e.params.delta));
    PutU32(&buf, static_cast<uint32_t>(e.clique.vertices.size()));
    for (VertexId v : e.clique.vertices) PutU32(&buf, v);
    PutU64(&buf, static_cast<uint64_t>(e.clique.attr_counts.a()));
    PutU64(&buf, static_cast<uint64_t>(e.clique.attr_counts.b()));
  }
  PutU64(&buf, Checksum(AsBytes(buf)));
  return AtomicWriteFile(path, buf);
}

Status LoadWarmFile(const std::string& path, std::vector<WarmEntry>* out) {
  out->clear();
  std::string contents;
  FAIRCLIQUE_RETURN_NOT_OK(ReadFile(path, &contents));
  const std::span<const uint8_t> bytes = AsBytes(contents);
  if (bytes.size() < 20 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Bad(path, "bad magic or truncated");
  }
  size_t tail = bytes.size() - 8;
  uint64_t declared = 0;
  size_t tail_pos = tail;
  GetU64(bytes, &tail_pos, &declared);
  if (Checksum(bytes.subspan(0, tail)) != declared) {
    return Bad(path, "checksum mismatch");
  }
  const std::span<const uint8_t> body = bytes.subspan(0, tail);
  size_t pos = 4;
  uint32_t version = 0, count = 0;
  GetU32(body, &pos, &version);
  GetU32(body, &pos, &count);
  if (version != kFormatVersion) return Bad(path, "unsupported version");
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WarmEntry e;
    uint32_t key_len = 0, k = 0, delta = 0, clique_size = 0;
    if (!GetU32(body, &pos, &key_len) || body.size() - pos < key_len) {
      return Bad(path, "truncated entry");
    }
    e.key.assign(reinterpret_cast<const char*>(body.data() + pos), key_len);
    pos += key_len;
    if (body.size() - pos < 9) return Bad(path, "truncated entry");
    uint64_t fp = 0;
    GetU64(body, &pos, &fp);
    e.fingerprint = fp;
    e.has_params = body[pos++] != 0;
    if (!GetU32(body, &pos, &k) || !GetU32(body, &pos, &delta) ||
        !GetU32(body, &pos, &clique_size)) {
      return Bad(path, "truncated entry");
    }
    e.params.k = static_cast<int>(k);
    e.params.delta = static_cast<int>(delta);
    if (body.size() - pos < 4ull * clique_size + 16) {
      return Bad(path, "truncated clique");
    }
    e.clique.vertices.reserve(clique_size);
    for (uint32_t j = 0; j < clique_size; ++j) {
      uint32_t v = 0;
      GetU32(body, &pos, &v);
      e.clique.vertices.push_back(v);
    }
    uint64_t a = 0, b = 0;
    GetU64(body, &pos, &a);
    GetU64(body, &pos, &b);
    e.clique.attr_counts[Attribute::kA] = static_cast<int64_t>(a);
    e.clique.attr_counts[Attribute::kB] = static_cast<int64_t>(b);
    out->push_back(std::move(e));
  }
  if (pos != tail) return Bad(path, "trailing garbage");
  return Status::OK();
}

}  // namespace storage
}  // namespace fairclique
