#ifndef FAIRCLIQUE_STORAGE_FORMAT_UTIL_H_
#define FAIRCLIQUE_STORAGE_FORMAT_UTIL_H_

/// Byte-level helpers shared by the durable formats (FCG2 snapshots, the
/// update WAL, the manifest, the warm-cache file): fixed-width little-endian
/// integer framing and the FNV-1a checksum that every section/record carries.
/// All formats are written and read on the same host; the explicit
/// little-endian framing makes the files portable across little-endian
/// machines and makes a big-endian reader fail loudly on the magic/checksum
/// instead of silently misreading.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace fairclique {
namespace storage {

inline void PutU32(std::string* buf, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff),
                   static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff),
                   static_cast<char>((v >> 24) & 0xff)};
  buf->append(bytes, 4);
}

inline void PutU64(std::string* buf, uint64_t v) {
  PutU32(buf, static_cast<uint32_t>(v & 0xffffffffull));
  PutU32(buf, static_cast<uint32_t>(v >> 32));
}

inline bool GetU32(std::span<const uint8_t> buf, size_t* pos, uint32_t* out) {
  if (*pos + 4 > buf.size()) return false;
  const uint8_t* p = buf.data() + *pos;
  *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

inline bool GetU64(std::span<const uint8_t> buf, size_t* pos, uint64_t* out) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32(buf, pos, &lo) || !GetU32(buf, pos, &hi)) return false;
  *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

/// FNV-1a over raw bytes; the per-section/per-record integrity check of all
/// storage formats. Not cryptographic — it defends against torn writes,
/// truncation and bit rot, not adversaries.
inline uint64_t Checksum(std::span<const uint8_t> bytes) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : bytes) h = (h ^ b) * 1099511628211ull;
  return h;
}

inline uint64_t Checksum(const void* data, size_t size) {
  return Checksum(
      std::span<const uint8_t>(static_cast<const uint8_t*>(data), size));
}

inline std::span<const uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

inline bool HexDigit(char c, int* out) {
  if (c >= '0' && c <= '9') *out = c - '0';
  else if (c >= 'a' && c <= 'f') *out = c - 'a' + 10;
  else if (c >= 'A' && c <= 'F') *out = c - 'A' + 10;
  else return false;
  return true;
}

/// Parses up to 16 hex digits (the FingerprintHex form) into a uint64.
inline bool ParseHex64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  uint64_t v = 0;
  for (char c : token) {
    int digit = 0;
    if (!HexDigit(c, &digit)) return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_FORMAT_UTIL_H_
