#ifndef FAIRCLIQUE_STORAGE_WARM_FILE_H_
#define FAIRCLIQUE_STORAGE_WARM_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace fairclique {
namespace storage {

/// One persistable exact result-cache entry. Only the proven part of a
/// cached result survives a restart: the clique, its fairness parameters,
/// and the graph fingerprint it is exact for. Timings and node counts are
/// run artifacts and are not persisted. On restore the clique is re-checked
/// with the verifier against the registered graph of that fingerprint, so
/// a stale or bit-rotted entry is dropped instead of served. The verifier
/// proves *validity* (a fair clique of that exact content), not
/// *maximality* — re-proving maximality would cost the search the cache
/// exists to avoid — so like every store here, the data dir is trusted
/// state: its checksums detect accidents, they are not MACs.
struct WarmEntry {
  std::string key;         // ResultCache key: "<fp-hex>|<options-key>"
  uint64_t fingerprint = 0;
  CliqueResult clique;
  bool has_params = false;
  FairnessParams params;
};

/// Binary container ("FCW1"): u32 magic, u32 version, u32 entry count, the
/// length-prefixed entries, and a trailing FNV-1a checksum over everything
/// before it. Written atomically (tmp + rename).
Status SaveWarmFile(const std::string& path,
                    std::span<const WarmEntry> entries);

/// Loads `path`. NotFound when absent; Corruption on checksum or framing
/// failures (the whole file is rejected — a torn warm file is a cache miss,
/// not a recovery problem).
Status LoadWarmFile(const std::string& path, std::vector<WarmEntry>* out);

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_WARM_FILE_H_
