#include "storage/storage_manager.h"

#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "common/logging.h"
#include "graph/fingerprint.h"
#include "storage/fcg2.h"
#include "storage/format_util.h"
#include "storage/io_util.h"

namespace fairclique {
namespace storage {

namespace {

constexpr char kWarmFileName[] = "warm.cache";

}  // namespace

std::string StorageManager::FileStem(const std::string& name) {
  std::string sanitized;
  sanitized.reserve(name.size());
  for (char c : name) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    sanitized.push_back(safe ? c : '_');
  }
  if (sanitized.size() > 64) sanitized.resize(64);
  // The hash suffix keeps distinct names distinct even when sanitization or
  // truncation collides them.
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08x",
                static_cast<uint32_t>(Checksum(name.data(), name.size())));
  return sanitized + "-" + hex;
}

Status StorageManager::Open(const std::string& data_dir,
                            const Options& options,
                            std::unique_ptr<StorageManager>* out) {
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  if (ec) {
    return Status::IOError("cannot create data dir " + data_dir + ": " +
                           ec.message());
  }
  std::unique_ptr<StorageManager> manager(
      new StorageManager(data_dir, options));

  Status status = LoadManifest(manager->ManifestPath(), &manager->manifest_);
  if (status.IsNotFound()) {
    status = Status::OK();  // fresh data dir
  }
  FAIRCLIQUE_RETURN_NOT_OK(status);

  // Prime the per-graph WAL state so OnReplace's coverage check works even
  // for callers that attach storage without running RecoverAll. Only a log
  // whose metadata chain is intact end to end (first record rooted at the
  // snapshot, each record's base the previous record's result) may prime:
  // appending after a stale tail would fsync-acknowledge records the next
  // recovery provably discards. An unprimed name simply routes its next
  // epoch down the snapshot-rewrite path. RecoverAll re-reads these files
  // with full content validation; the duplicate read is bounded by
  // wal_compaction_threshold records per graph.
  for (const ManifestEntry& entry : manager->manifest_.entries) {
    if (entry.wal_file.empty()) continue;
    std::vector<WalRecord> records;
    FAIRCLIQUE_RETURN_NOT_OK(
        ReadWal(manager->FullPath(entry.wal_file), &records, nullptr));
    if (records.empty()) continue;
    bool chained = true;
    uint64_t fp = entry.snapshot_fingerprint;
    uint64_t version = entry.snapshot_version;
    for (const WalRecord& record : records) {
      if (record.base_fingerprint != fp || record.version != version + 1) {
        chained = false;
        break;
      }
      fp = record.fingerprint;
      version = record.version;
    }
    if (!chained) continue;
    WalState state;
    state.records = records.size();
    state.last_version = version;
    state.last_fingerprint = fp;
    manager->wal_state_[entry.name] = state;
  }
  manager->RemoveUnreferencedFilesLocked();
  *out = std::move(manager);
  return Status::OK();
}

void StorageManager::RemoveUnreferencedFilesLocked() {
  std::set<std::string> referenced = {"MANIFEST", kWarmFileName};
  for (const ManifestEntry& entry : manifest_.entries) {
    referenced.insert(entry.snapshot_file);
    if (!entry.wal_file.empty()) referenced.insert(entry.wal_file);
  }
  std::error_code ec;
  for (const auto& dir_entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!dir_entry.is_regular_file(ec)) continue;
    const std::string file = dir_entry.path().filename().string();
    const bool ours = file.ends_with(".fcg2") || file.ends_with(".wal") ||
                      file.ends_with(".tmp");
    if (ours && referenced.count(file) == 0) {
      // Leftover from a crash between a snapshot/compaction write and the
      // manifest publish; the manifest never references it, so it is dead.
      RemoveFileIfExists(FullPath(file));
    }
  }
}

void StorageManager::RemoveEntryFilesLocked(const ManifestEntry& entry) {
  RemoveFileIfExists(FullPath(entry.snapshot_file));
  if (!entry.wal_file.empty()) RemoveFileIfExists(FullPath(entry.wal_file));
}

Status StorageManager::PersistGraphLocked(const std::string& name,
                                          const AttributedGraph& g,
                                          uint64_t version,
                                          uint64_t fingerprint,
                                          const std::string& source,
                                          bool is_compaction) {
  ManifestEntry fresh;
  fresh.name = name;
  // Version alone is not unique across a forget/re-register cycle (both
  // lives of a name start at version 0); the fingerprint makes distinct
  // content land under distinct names, which the crash-ordering argument
  // below depends on.
  fresh.snapshot_file = FileStem(name) + "." + std::to_string(version) + "." +
                        FingerprintHex(fingerprint) + ".fcg2";
  fresh.snapshot_version = version;
  fresh.snapshot_fingerprint = fingerprint;
  fresh.source = source;

  // Ordering is the crash-safety argument: (1) the new snapshot lands under
  // a version-distinct name, (2) the manifest atomically starts referencing
  // it, (3) only then do the superseded files disappear. A crash anywhere
  // leaves a manifest whose references all exist and validate.
  FAIRCLIQUE_RETURN_NOT_OK(SaveFcg2(g, FullPath(fresh.snapshot_file)));

  ManifestEntry old;
  bool had_old = false;
  if (ManifestEntry* existing = manifest_.Find(name)) {
    old = *existing;
    had_old = true;
    if (fresh.source.empty()) fresh.source = old.source;
    *existing = fresh;
  } else {
    manifest_.entries.push_back(fresh);
  }
  Status status = SaveManifest(manifest_, ManifestPath());
  if (!status.ok()) {
    // Roll the in-memory catalog back so it keeps mirroring the disk —
    // and never unlink a file the durable manifest still references
    // (same name implies same version+fingerprint, i.e. identical
    // content, so the overwrite above was already harmless).
    if (had_old) {
      *manifest_.Find(name) = old;
    } else {
      manifest_.Remove(name);
    }
    if (!(had_old && old.snapshot_file == fresh.snapshot_file)) {
      RemoveFileIfExists(FullPath(fresh.snapshot_file));
    }
    return status;
  }
  if (had_old && old.snapshot_file != fresh.snapshot_file) {
    RemoveFileIfExists(FullPath(old.snapshot_file));
  }
  if (had_old && !old.wal_file.empty()) {
    RemoveFileIfExists(FullPath(old.wal_file));
  }
  wal_state_.erase(name);
  counters_.snapshots_written++;
  if (is_compaction) counters_.compactions++;
  return Status::OK();
}

Status StorageManager::PersistGraph(const std::string& name,
                                    const AttributedGraph& g,
                                    uint64_t version, uint64_t fingerprint,
                                    const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  return PersistGraphLocked(name, g, version, fingerprint, source,
                            /*is_compaction=*/false);
}

Status StorageManager::AppendUpdate(const std::string& name,
                                    const UpdateSummary& summary,
                                    std::span<const UpdateOp> ops) {
  std::lock_guard<std::mutex> lock(mu_);
  ManifestEntry* entry = manifest_.Find(name);
  if (entry == nullptr) {
    return Status::NotFound("AppendUpdate: '" + name + "' is not persisted");
  }
  const WalState* state = nullptr;
  auto it = wal_state_.find(name);
  if (it != wal_state_.end()) state = &it->second;
  const uint64_t expected_fp =
      state != nullptr ? state->last_fingerprint : entry->snapshot_fingerprint;
  const uint64_t expected_version =
      (state != nullptr ? state->last_version : entry->snapshot_version) + 1;
  if (summary.base_fingerprint != expected_fp ||
      summary.version != expected_version) {
    return Status::InvalidArgument(
        "AppendUpdate: batch does not continue the durable chain of '" +
        name + "' (expected base " + FingerprintHex(expected_fp) +
        " version " + std::to_string(expected_version) + ", got base " +
        FingerprintHex(summary.base_fingerprint) + " version " +
        std::to_string(summary.version) + ")");
  }

  if (entry->wal_file.empty()) {
    ManifestEntry updated = *entry;
    // Named after the snapshot it extends, inheriting its uniqueness.
    updated.wal_file = entry->snapshot_file + ".wal";
    // Reference the WAL in the manifest before writing its first record:
    // the reverse order could fsync an acknowledged update into a file
    // recovery never looks at.
    RemoveFileIfExists(FullPath(updated.wal_file));
    *entry = updated;
    Status status = SaveManifest(manifest_, ManifestPath());
    if (!status.ok()) {
      entry->wal_file.clear();
      return status;
    }
  }

  WalRecord record;
  record.base_fingerprint = summary.base_fingerprint;
  record.fingerprint = summary.fingerprint;
  record.version = summary.version;
  record.ops.assign(ops.begin(), ops.end());
  FAIRCLIQUE_RETURN_NOT_OK(
      AppendWalRecord(FullPath(entry->wal_file), record));

  WalState& ws = wal_state_[name];
  ws.records++;
  ws.last_version = summary.version;
  ws.last_fingerprint = summary.fingerprint;
  counters_.wal_records_appended++;
  return Status::OK();
}

Status StorageManager::OnReplace(const std::string& name,
                                 const AttributedGraph& snapshot,
                                 uint64_t version, uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  ManifestEntry* entry = manifest_.Find(name);
  if (entry == nullptr) {
    return PersistGraphLocked(name, snapshot, version, fingerprint,
                              /*source=*/"", /*is_compaction=*/false);
  }
  auto it = wal_state_.find(name);
  const bool wal_covers = it != wal_state_.end() &&
                          it->second.last_version == version &&
                          it->second.last_fingerprint == fingerprint;
  const bool snapshot_covers = entry->snapshot_version == version &&
                               entry->snapshot_fingerprint == fingerprint;
  if (!wal_covers && !snapshot_covers) {
    // The epoch was published without a matching WAL record (a Replace
    // outside the AppendUpdate flow, or a WAL write that failed): the
    // snapshot rewrite is the only way to make it durable.
    return PersistGraphLocked(name, snapshot, version, fingerprint,
                              entry->source, /*is_compaction=*/false);
  }
  if (wal_covers && it->second.records >= options_.wal_compaction_threshold) {
    return PersistGraphLocked(name, snapshot, version, fingerprint,
                              entry->source, /*is_compaction=*/true);
  }
  return Status::OK();
}

Status StorageManager::Forget(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ManifestEntry* entry = manifest_.Find(name);
  if (entry == nullptr) return Status::OK();
  ManifestEntry removed = *entry;
  manifest_.Remove(name);
  Status status = SaveManifest(manifest_, ManifestPath());
  if (!status.ok()) {
    manifest_.entries.push_back(removed);
    return status;
  }
  RemoveEntryFilesLocked(removed);
  wal_state_.erase(name);
  return Status::OK();
}

Status StorageManager::RecoverAll(std::vector<RecoveredGraph>* out,
                                  const std::set<std::string>* skip_names) {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  bool manifest_dirty = false;
  for (ManifestEntry& entry : manifest_.entries) {
    if (skip_names != nullptr && skip_names->count(entry.name) > 0) continue;
    AttributedGraph snapshot;
    Status status = LoadFcg2(FullPath(entry.snapshot_file), &snapshot);
    if (status.ok() &&
        GraphFingerprint(snapshot) != entry.snapshot_fingerprint) {
      status = Status::Corruption("snapshot fingerprint mismatch for '" +
                                  entry.name + "'");
    }
    if (!status.ok()) {
      FC_LOG(kWarning) << "recovery skipped '" << entry.name
                      << "': " << status.ToString();
      counters_.recover_failures++;
      continue;
    }

    std::vector<WalRecord> records;
    bool torn_tail = false;
    if (!entry.wal_file.empty()) {
      status = ReadWal(FullPath(entry.wal_file), &records, &torn_tail);
      if (!status.ok()) {
        FC_LOG(kWarning) << "recovery skipped '" << entry.name
                        << "': " << status.ToString();
        counters_.recover_failures++;
        continue;
      }
    }

    RecoveredGraph recovered;
    recovered.name = entry.name;
    recovered.source = entry.source;

    // Replay the WAL tail, proving every step: a record must start from the
    // exact fingerprint the chain reached and land on the exact fingerprint
    // it recorded. Divergence means stale records (e.g. an epoch whose
    // snapshot rewrite superseded the log mid-crash) — stop there and
    // truncate the tail away.
    size_t replayed = 0;
    if (!records.empty()) {
      auto dyn =
          std::make_unique<DynamicGraph>(snapshot, entry.snapshot_version);
      for (const WalRecord& record : records) {
        if (record.base_fingerprint != dyn->fingerprint() ||
            record.version != dyn->version() + 1) {
          break;
        }
        UpdateSummary summary;
        if (!dyn->Apply(std::span<const UpdateOp>(record.ops), &summary)
                 .ok()) {
          break;
        }
        if (summary.fingerprint != record.fingerprint) {
          // The batch applied but produced different content than the log
          // promised; rebuild the pre-record state and stop the replay.
          auto redo =
              std::make_unique<DynamicGraph>(snapshot, entry.snapshot_version);
          for (size_t i = 0; i < replayed; ++i) {
            redo->Apply(std::span<const UpdateOp>(records[i].ops), nullptr);
          }
          dyn = std::move(redo);
          break;
        }
        ++replayed;
      }
      recovered.graph = dyn->snapshot();
      recovered.version = dyn->version();
      recovered.fingerprint = dyn->fingerprint();
    } else {
      recovered.version = entry.snapshot_version;
      recovered.fingerprint = entry.snapshot_fingerprint;
      recovered.graph =
          std::make_shared<const AttributedGraph>(std::move(snapshot));
    }
    recovered.wal_records_replayed = replayed;
    counters_.wal_records_replayed += replayed;

    // Drop whatever the replay could not prove, so later appends continue
    // the durable chain from the state actually served.
    bool tail_clean = true;
    if (replayed < records.size() || torn_tail) {
      if (replayed == 0) {
        RemoveFileIfExists(FullPath(entry.wal_file));
        entry.wal_file.clear();
        manifest_dirty = true;
        wal_state_.erase(entry.name);
      } else {
        std::string rewritten;
        for (size_t i = 0; i < replayed; ++i) {
          rewritten += SerializeWalFrame(records[i]);
        }
        Status rewrite =
            AtomicWriteFile(FullPath(entry.wal_file), rewritten);
        if (!rewrite.ok()) {
          FC_LOG(kWarning) << "could not truncate stale WAL tail of '"
                           << entry.name << "': " << rewrite.ToString();
          tail_clean = false;
        }
      }
    }
    // Prime the append chain only when the on-disk log really ends at the
    // replayed state: appending after a stale tail that survived a failed
    // rewrite would fsync records the next recovery throws away. Leaving
    // the state unprimed routes the next epoch down OnReplace's
    // snapshot-rewrite path instead, which drops the bad log entirely.
    if (replayed > 0 && tail_clean) {
      WalState state;
      state.records = replayed;
      state.last_version = recovered.version;
      state.last_fingerprint = recovered.fingerprint;
      wal_state_[entry.name] = state;
    } else if (replayed > 0) {
      wal_state_.erase(entry.name);
    }

    counters_.recoveries++;
    out->push_back(std::move(recovered));
  }
  if (manifest_dirty) {
    FAIRCLIQUE_RETURN_NOT_OK(SaveManifest(manifest_, ManifestPath()));
  }
  return Status::OK();
}

Status StorageManager::SaveWarmEntries(std::span<const WarmEntry> entries) {
  std::lock_guard<std::mutex> lock(mu_);
  FAIRCLIQUE_RETURN_NOT_OK(SaveWarmFile(FullPath(kWarmFileName), entries));
  counters_.warm_entries_saved += entries.size();
  return Status::OK();
}

Status StorageManager::LoadWarmEntries(std::vector<WarmEntry>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status = LoadWarmFile(FullPath(kWarmFileName), out);
  if (status.IsNotFound()) {
    out->clear();
    return Status::OK();
  }
  return status;
}

void StorageManager::NoteWarmRestore(size_t restored, size_t rejected) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.warm_entries_restored += restored;
  counters_.warm_entries_rejected += rejected;
}

StorageCounters StorageManager::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace storage
}  // namespace fairclique
