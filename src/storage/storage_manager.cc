#include "storage/storage_manager.h"

#include <cstdio>
#include <deque>
#include <filesystem>
#include <set>
#include <utility>

#include "common/logging.h"
#include "graph/fingerprint.h"
#include "obs/crash_handler.h"
#include "obs/event_journal.h"
#include "storage/fcg2.h"
#include "storage/format_util.h"
#include "storage/io_util.h"

namespace fairclique {
namespace storage {

namespace {

constexpr char kWarmFileName[] = "warm.cache";

}  // namespace

/// Per-graph durable state. `entry`/`registered` mirror the manifest entry
/// for this name (the invariant: every mutation of that entry happens under
/// this mutex, plus manifest_mu_ for the file write), so the hot append
/// path reads its own catalog row without touching any global lock.
///
/// `chain` records the (version, fingerprint) of every WAL record enqueued
/// since the snapshot, in chain order — including records whose group
/// commit is still in flight. That is what OnReplace checks coverage
/// against: an epoch published by one writer while another writer's later
/// record is still committing is "covered, not tail", so neither the
/// rewrite nor the compaction path may delete the WAL out from under the
/// in-flight frame. `poisoned` marks a WAL whose file may end in a torn
/// frame (a failed append); nothing is appended after it, and the next
/// OnReplace rewrites the snapshot, dropping the log.
struct StorageManager::Stripe {
  fc::Mutex mu;
  bool registered GUARDED_BY(mu) = false;
  ManifestEntry entry GUARDED_BY(mu);
  std::deque<std::pair<uint64_t, uint64_t>> chain GUARDED_BY(mu);
  bool poisoned GUARDED_BY(mu) = false;
  /// Newest epoch OnReplace has acted on; older write-throughs (a Replace
  /// racing a later one outside the registry's publish lock) are ignored
  /// instead of regressing the durable snapshot.
  uint64_t published_version GUARDED_BY(mu) = 0;
  /// Set by Forget, cleared by an explicit PersistGraph: an OnReplace that
  /// raced the eviction (in-flight write-through for a name just
  /// forgotten) must not resurrect the durable state it lost the race to.
  bool tombstoned GUARDED_BY(mu) = false;
  std::shared_ptr<GroupCommitWal> writer GUARDED_BY(mu);
};

StorageManager::~StorageManager() = default;

StorageManager::AppendTicket::~AppendTicket() {
  // An abandoned ticket still owes its frame a wait: the stripe's poison
  // bookkeeping must see the failure even if the caller lost interest.
  if (pending_) Wait();
}

StorageManager::AppendTicket::AppendTicket(AppendTicket&& other) noexcept
    : stripe_(std::move(other.stripe_)),
      wal_(std::move(other.wal_)),
      records_counter_(std::move(other.records_counter_)),
      ticket_(other.ticket_),
      pending_(std::exchange(other.pending_, false)),
      result_(std::move(other.result_)) {}

StorageManager::AppendTicket& StorageManager::AppendTicket::operator=(
    AppendTicket&& other) noexcept {
  if (this != &other) {
    if (pending_) Wait();  // settle the overwritten obligation first
    stripe_ = std::move(other.stripe_);
    wal_ = std::move(other.wal_);
    records_counter_ = std::move(other.records_counter_);
    ticket_ = other.ticket_;
    pending_ = std::exchange(other.pending_, false);
    result_ = std::move(other.result_);
  }
  return *this;
}

Status StorageManager::AppendTicket::Wait() {
  if (!pending_) return result_;
  pending_ = false;
  result_ = wal_->Wait(ticket_);
  if (result_.ok()) {
    records_counter_->fetch_add(1, std::memory_order_relaxed);
  } else {
    fc::MutexLock lock(stripe_->mu);
    stripe_->poisoned = true;
  }
  return result_;
}

std::string StorageManager::FileStem(const std::string& name) {
  std::string sanitized;
  sanitized.reserve(name.size());
  for (char c : name) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    sanitized.push_back(safe ? c : '_');
  }
  if (sanitized.size() > 64) sanitized.resize(64);
  // The hash suffix keeps distinct names distinct even when sanitization or
  // truncation collides them.
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08x",
                static_cast<uint32_t>(Checksum(name.data(), name.size())));
  return sanitized + "-" + hex;
}

std::shared_ptr<StorageManager::Stripe> StorageManager::GetStripe(
    const std::string& name) const {
  fc::MutexLock lock(map_mu_);
  auto it = stripes_.find(name);
  return it == stripes_.end() ? nullptr : it->second;
}

std::shared_ptr<StorageManager::Stripe> StorageManager::GetOrCreateStripe(
    const std::string& name) {
  fc::MutexLock lock(map_mu_);
  auto it = stripes_.find(name);
  if (it == stripes_.end()) {
    it = stripes_.emplace(name, std::make_shared<Stripe>()).first;
  }
  return it->second;
}

Status StorageManager::Open(const std::string& data_dir,
                            const Options& options,
                            std::unique_ptr<StorageManager>* out) {
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  if (ec) {
    return Status::IOError("cannot create data dir " + data_dir + ": " +
                           ec.message());
  }
  std::unique_ptr<StorageManager> manager(
      new StorageManager(data_dir, options));

  // Open runs before the manager is visible to any other thread, but the
  // guarded members are locked anyway — the analysis does not exempt
  // factory bodies, and the uncontended locks cost nothing.
  std::vector<ManifestEntry> entries;
  {
    fc::MutexLock manifest_lock(manager->manifest_mu_);
    Status status =
        LoadManifest(manager->ManifestPath(), &manager->manifest_);
    if (status.IsNotFound()) {
      status = Status::OK();  // fresh data dir
    }
    FAIRCLIQUE_RETURN_NOT_OK(status);
    entries = manager->manifest_.entries;
  }

  // One stripe per manifest entry. Prime a stripe's append chain only when
  // its log's metadata chain is intact end to end (first record rooted at
  // the snapshot, each record's base the previous record's result):
  // appending after a stale tail would fsync-acknowledge records the next
  // recovery provably discards. An unprimed name simply routes its next
  // epoch down the snapshot-rewrite path. RecoverAll re-reads these files
  // with full content validation; the duplicate read is bounded by
  // wal_compaction_threshold records per graph.
  for (const ManifestEntry& entry : entries) {
    auto stripe = std::make_shared<Stripe>();
    {
      fc::MutexLock map_lock(manager->map_mu_);
      manager->stripes_.emplace(entry.name, stripe);
    }
    // map_mu_ is released before the stripe's mu is taken, preserving the
    // "map_mu_ is a leaf" invariant even here.
    fc::MutexLock stripe_lock(stripe->mu);
    stripe->registered = true;
    stripe->entry = entry;
    stripe->published_version = entry.snapshot_version;
    if (entry.wal_file.empty()) continue;
    std::vector<WalRecord> records;
    Status status =
        ReadWal(manager->FullPath(entry.wal_file), &records, nullptr);
    if (status.IsCorruption()) {
      // Mid-file corruption: never prime (and never truncate) — RecoverAll
      // reports it loudly and refuses to serve a silently shortened epoch.
      // Poison the stripe so no append can fsync-acknowledge a record into
      // the end of a file recovery will never replay.
      stripe->poisoned = true;
      continue;
    }
    FAIRCLIQUE_RETURN_NOT_OK(status);
    if (records.empty()) continue;
    bool chained = true;
    uint64_t fp = entry.snapshot_fingerprint;
    uint64_t version = entry.snapshot_version;
    for (const WalRecord& record : records) {
      if (record.base_fingerprint != fp || record.version != version + 1) {
        chained = false;
        break;
      }
      fp = record.fingerprint;
      version = record.version;
    }
    if (!chained) {
      // A log whose records do not chain from the snapshot is stale (e.g.
      // a crashed snapshot rewrite superseded it). Appending after it
      // would fsync-acknowledge records the next recovery provably
      // discards, so poison until a rewrite (or RecoverAll's truncation)
      // supersedes the file.
      stripe->poisoned = true;
      continue;
    }
    for (const WalRecord& record : records) {
      stripe->chain.emplace_back(record.version, record.fingerprint);
    }
    stripe->published_version = version;
  }
  manager->RemoveUnreferencedFiles();
  *out = std::move(manager);
  return Status::OK();
}

void StorageManager::RemoveUnreferencedFiles() {
  std::set<std::string> referenced = {"MANIFEST", kWarmFileName};
  {
    fc::MutexLock lock(manifest_mu_);
    for (const ManifestEntry& entry : manifest_.entries) {
      referenced.insert(entry.snapshot_file);
      if (!entry.wal_file.empty()) referenced.insert(entry.wal_file);
    }
  }
  std::error_code ec;
  for (const auto& dir_entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!dir_entry.is_regular_file(ec)) continue;
    const std::string file = dir_entry.path().filename().string();
    const bool ours = file.ends_with(".fcg2") || file.ends_with(".wal") ||
                      file.ends_with(".tmp");
    if (ours && referenced.count(file) == 0) {
      // Leftover from a crash between a snapshot/compaction write and the
      // manifest publish; the manifest never references it, so it is dead.
      RemoveFileIfExists(FullPath(file));
    }
  }
}

Status StorageManager::PersistStripeLocked(Stripe& stripe,
                                           const std::string& name,
                                           const AttributedGraph& g,
                                           uint64_t version,
                                           uint64_t fingerprint,
                                           const std::string& source,
                                           bool is_compaction) {
  // The REQUIRES(stripe.mu) contract cannot be written in the header
  // (Stripe is incomplete there); assert it into the analysis instead.
  stripe.mu.AssertHeld();
  ManifestEntry fresh;
  fresh.name = name;
  // Version alone is not unique across a forget/re-register cycle (both
  // lives of a name start at version 0); the fingerprint makes distinct
  // content land under distinct names, which the crash-ordering argument
  // below depends on.
  fresh.snapshot_file = FileStem(name) + "." + std::to_string(version) + "." +
                        FingerprintHex(fingerprint) + ".fcg2";
  fresh.snapshot_version = version;
  fresh.snapshot_fingerprint = fingerprint;
  fresh.source = source;
  if (fresh.source.empty() && stripe.registered) {
    fresh.source = stripe.entry.source;
  }

  // Ordering is the crash-safety argument: (1) the new snapshot lands under
  // a version-distinct name, (2) the manifest atomically starts referencing
  // it, (3) only then do the superseded files disappear. A crash anywhere
  // leaves a manifest whose references all exist and validate.
  FAIRCLIQUE_RETURN_NOT_OK(SaveFcg2(g, FullPath(fresh.snapshot_file)));
  obs::EventJournal::Default().Record(obs::EventType::kSnapshotWrite, version,
                                      0, 0, name.c_str());

  const ManifestEntry old = stripe.entry;
  const bool had_old = stripe.registered;
  {
    fc::MutexLock manifest_lock(manifest_mu_);
    if (ManifestEntry* existing = manifest_.Find(name)) {
      *existing = fresh;
    } else {
      manifest_.entries.push_back(fresh);
    }
    Status status = SaveManifest(manifest_, ManifestPath());
    if (!status.ok()) {
      // Roll the in-memory catalog back so it keeps mirroring the disk —
      // and never unlink a file the durable manifest still references
      // (same name implies same version+fingerprint, i.e. identical
      // content, so the overwrite above was already harmless).
      if (had_old) {
        *manifest_.Find(name) = old;
      } else {
        manifest_.Remove(name);
      }
      if (!(had_old && old.snapshot_file == fresh.snapshot_file)) {
        RemoveFileIfExists(FullPath(fresh.snapshot_file));
      }
      return status;
    }
  }
  if (had_old && old.snapshot_file != fresh.snapshot_file) {
    RemoveFileIfExists(FullPath(old.snapshot_file));
  }
  if (had_old && !old.wal_file.empty()) {
    RemoveFileIfExists(FullPath(old.wal_file));
  }
  stripe.entry = fresh;
  stripe.registered = true;
  stripe.chain.clear();
  stripe.poisoned = false;
  stripe.writer.reset();  // its file is gone; waiters hold their own ref
  stripe.published_version = std::max(stripe.published_version, version);
  {
    fc::MutexLock lock(counters_mu_);
    counters_.snapshots_written++;
    if (is_compaction) counters_.compactions++;
  }
  return Status::OK();
}

Status StorageManager::PersistGraph(const std::string& name,
                                    const AttributedGraph& g,
                                    uint64_t version, uint64_t fingerprint,
                                    const std::string& source) {
  std::shared_ptr<Stripe> stripe = GetOrCreateStripe(name);
  fc::MutexLock lock(stripe->mu);
  // An explicit persist is an authoritative (re-)registration.
  stripe->tombstoned = false;
  return PersistStripeLocked(*stripe, name, g, version, fingerprint, source,
                             /*is_compaction=*/false);
}

Status StorageManager::AppendUpdateAsync(const std::string& name,
                                         const UpdateSummary& summary,
                                         std::span<const UpdateOp> ops,
                                         AppendTicket* ticket) {
  *ticket = AppendTicket{};
  std::shared_ptr<Stripe> stripe = GetStripe(name);
  if (stripe == nullptr) {
    return Status::NotFound("AppendUpdate: '" + name + "' is not persisted");
  }
  fc::MutexLock lock(stripe->mu);
  if (!stripe->registered) {
    return Status::NotFound("AppendUpdate: '" + name + "' is not persisted");
  }
  if (stripe->poisoned) {
    return Status::IOError(
        "AppendUpdate: the WAL of '" + name +
        "' had a failed append (its tail may be torn); a snapshot rewrite "
        "must supersede it before new records can be logged");
  }
  const uint64_t expected_fp = stripe->chain.empty()
                                   ? stripe->entry.snapshot_fingerprint
                                   : stripe->chain.back().second;
  const uint64_t expected_version = (stripe->chain.empty()
                                         ? stripe->entry.snapshot_version
                                         : stripe->chain.back().first) +
                                    1;
  if (summary.base_fingerprint != expected_fp ||
      summary.version != expected_version) {
    return Status::InvalidArgument(
        "AppendUpdate: batch does not continue the durable chain of '" +
        name + "' (expected base " + FingerprintHex(expected_fp) +
        " version " + std::to_string(expected_version) + ", got base " +
        FingerprintHex(summary.base_fingerprint) + " version " +
        std::to_string(summary.version) + ")");
  }

  if (stripe->entry.wal_file.empty()) {
    ManifestEntry updated = stripe->entry;
    // Named after the snapshot it extends, inheriting its uniqueness.
    updated.wal_file = stripe->entry.snapshot_file + ".wal";
    // Reference the WAL in the manifest before writing its first record:
    // the reverse order could fsync an acknowledged update into a file
    // recovery never looks at.
    RemoveFileIfExists(FullPath(updated.wal_file));
    {
      fc::MutexLock manifest_lock(manifest_mu_);
      ManifestEntry* existing = manifest_.Find(name);
      const ManifestEntry rollback = existing != nullptr ? *existing
                                                         : ManifestEntry{};
      if (existing != nullptr) {
        *existing = updated;
      } else {
        manifest_.entries.push_back(updated);
      }
      Status status = SaveManifest(manifest_, ManifestPath());
      if (!status.ok()) {
        if (existing != nullptr) {
          *manifest_.Find(name) = rollback;
        } else {
          manifest_.Remove(name);
        }
        return status;
      }
    }
    stripe->entry = updated;
  }

  WalRecord record;
  record.base_fingerprint = summary.base_fingerprint;
  record.fingerprint = summary.fingerprint;
  record.version = summary.version;
  record.ops.assign(ops.begin(), ops.end());
  std::string frame = SerializeWalFrame(record);

  if (options_.group_commit) {
    if (stripe->writer == nullptr) {
      stripe->writer = std::make_shared<GroupCommitWal>(
          FullPath(stripe->entry.wal_file), options_.group_window_micros,
          wal_group_commits_);
    }
    // Enqueued under the stripe's mutex, so the frame's file position
    // matches its chain position; the caller waits outside every lock.
    ticket->stripe_ = stripe;
    ticket->wal_ = stripe->writer;
    ticket->records_counter_ = wal_records_appended_;
    ticket->ticket_ = stripe->writer->Enqueue(std::move(frame));
    ticket->pending_ = true;
    stripe->chain.emplace_back(summary.version, summary.fingerprint);
    obs::EventJournal::Default().Record(obs::EventType::kWalAppend,
                                        summary.version, ops.size(), 0,
                                        name.c_str());
    obs::NoteGraphWalRecords(name, stripe->chain.size());
    return Status::OK();
  }

  // Single-writer fallback: one open+write+fsync+close per record, done
  // while the stripe is held (other graphs' stripes stay free).
  Status status = DurableAppend(FullPath(stripe->entry.wal_file), frame);
  if (status.ok()) {
    stripe->chain.emplace_back(summary.version, summary.fingerprint);
    wal_records_appended_->fetch_add(1, std::memory_order_relaxed);
    obs::EventJournal::Default().Record(obs::EventType::kWalAppend,
                                        summary.version, ops.size(), 0,
                                        name.c_str());
    obs::NoteGraphWalRecords(name, stripe->chain.size());
  } else {
    stripe->poisoned = true;  // the file may now end in a torn frame
  }
  ticket->result_ = status;
  ticket->pending_ = false;
  return status;
}

Status StorageManager::AppendUpdate(const std::string& name,
                                    const UpdateSummary& summary,
                                    std::span<const UpdateOp> ops) {
  AppendTicket ticket;
  FAIRCLIQUE_RETURN_NOT_OK(AppendUpdateAsync(name, summary, ops, &ticket));
  return ticket.Wait();
}

Status StorageManager::OnReplace(const std::string& name,
                                 const AttributedGraph& snapshot,
                                 uint64_t version, uint64_t fingerprint) {
  std::shared_ptr<Stripe> stripe = GetOrCreateStripe(name);
  fc::MutexLock lock(stripe->mu);
  if (version < stripe->published_version) {
    // A write-through for an epoch this stripe already moved past (two
    // Replaces racing outside the registry's publish lock). Acting on it
    // would regress the durable snapshot below served state; the newer
    // epoch's write-through already covered durability.
    return Status::OK();
  }
  stripe->published_version = version;
  if (!stripe->registered) {
    if (stripe->tombstoned) {
      // This write-through lost a race against Forget: the name was
      // evicted after the epoch was published but before storage heard
      // about it. Re-persisting would resurrect durable state for a graph
      // the registry no longer serves.
      return Status::OK();
    }
    return PersistStripeLocked(*stripe, name, snapshot, version, fingerprint,
                               /*source=*/"", /*is_compaction=*/false);
  }
  const bool snapshot_covers =
      stripe->entry.snapshot_version == version &&
      stripe->entry.snapshot_fingerprint == fingerprint;
  // Walk the enqueued chain from its tail: the published epoch is covered
  // when it is ON the chain — even when later records (other writers'
  // in-flight batches) already extend past it, in which case neither
  // rewriting nor compacting is allowed (both would delete the WAL out
  // from under an in-flight frame).
  bool wal_covers = false;
  bool wal_covers_tail = false;
  if (!stripe->poisoned) {
    for (auto it = stripe->chain.rbegin(); it != stripe->chain.rend(); ++it) {
      if (it->first < version) break;  // chain versions strictly increase
      if (it->first == version && it->second == fingerprint) {
        wal_covers = true;
        wal_covers_tail = it == stripe->chain.rbegin();
        break;
      }
    }
  }
  if (!wal_covers && !snapshot_covers) {
    // The epoch was published without a matching WAL record (a Replace
    // outside the AppendUpdate flow, or a WAL write that failed): the
    // snapshot rewrite is the only way to make it durable.
    return PersistStripeLocked(*stripe, name, snapshot, version, fingerprint,
                               stripe->entry.source, /*is_compaction=*/false);
  }
  // Compaction requires the published epoch to be the chain TAIL: deleting
  // the WAL under a later in-flight frame could lose an acknowledged,
  // not-yet-published record to a crash. Under gapless pipelined write
  // saturation this defers compaction (the log keeps growing) until the
  // first publish that lands with nothing enqueued behind it — bounding
  // the log under sustained saturation needs WAL rotation, a ROADMAP item.
  if (wal_covers_tail &&
      stripe->chain.size() >= options_.wal_compaction_threshold) {
    return PersistStripeLocked(*stripe, name, snapshot, version, fingerprint,
                               stripe->entry.source, /*is_compaction=*/true);
  }
  return Status::OK();
}

Status StorageManager::Forget(const std::string& name) {
  std::shared_ptr<Stripe> stripe = GetStripe(name);
  if (stripe == nullptr) return Status::OK();
  fc::MutexLock lock(stripe->mu);
  if (!stripe->registered) return Status::OK();
  const ManifestEntry removed = stripe->entry;
  {
    fc::MutexLock manifest_lock(manifest_mu_);
    manifest_.Remove(name);
    Status status = SaveManifest(manifest_, ManifestPath());
    if (!status.ok()) {
      manifest_.entries.push_back(removed);
      return status;
    }
  }
  RemoveFileIfExists(FullPath(removed.snapshot_file));
  if (!removed.wal_file.empty()) {
    RemoveFileIfExists(FullPath(removed.wal_file));
  }
  stripe->registered = false;
  stripe->entry = ManifestEntry{};
  stripe->chain.clear();
  stripe->poisoned = false;
  // A re-registered name starts a new life at version 0; keeping the old
  // high-water mark would make the stale-epoch guard ignore it forever.
  stripe->published_version = 0;
  stripe->tombstoned = true;  // block in-flight write-throughs (see OnReplace)
  stripe->writer.reset();
  return Status::OK();
}

Status StorageManager::RecoverAll(std::vector<RecoveredGraph>* out,
                                  const std::set<std::string>* skip_names) {
  out->clear();
  // Recover in manifest order (stable across restarts). Each graph is
  // processed under its own stripe, so a `restore` on a live server leaves
  // other graphs' appends unblocked.
  std::vector<std::string> names;
  {
    fc::MutexLock lock(manifest_mu_);
    names.reserve(manifest_.entries.size());
    for (const ManifestEntry& entry : manifest_.entries) {
      names.push_back(entry.name);
    }
  }
  for (const std::string& name : names) {
    if (skip_names != nullptr && skip_names->count(name) > 0) continue;
    std::shared_ptr<Stripe> stripe = GetStripe(name);
    if (stripe == nullptr) continue;  // raced a Forget
    fc::MutexLock lock(stripe->mu);
    if (!stripe->registered) continue;
    ManifestEntry& entry = stripe->entry;

    AttributedGraph snapshot;
    Status status = LoadFcg2(FullPath(entry.snapshot_file), &snapshot);
    if (status.ok() &&
        GraphFingerprint(snapshot) != entry.snapshot_fingerprint) {
      status = Status::Corruption("snapshot fingerprint mismatch for '" +
                                  entry.name + "'");
    }
    if (!status.ok()) {
      FC_LOG(kWarning) << "recovery skipped '" << entry.name
                      << "': " << status.ToString();
      fc::MutexLock counter_lock(counters_mu_);
      counters_.recover_failures++;
      continue;
    }

    std::vector<WalRecord> records;
    bool torn_tail = false;
    if (!entry.wal_file.empty()) {
      status = ReadWal(FullPath(entry.wal_file), &records, &torn_tail);
      if (!status.ok()) {
        FC_LOG(kWarning) << "recovery skipped '" << entry.name
                        << "': " << status.ToString();
        // Appending to a log recovery cannot replay would acknowledge
        // records that are already lost; only a snapshot rewrite may
        // supersede it.
        stripe->poisoned = true;
        fc::MutexLock counter_lock(counters_mu_);
        counters_.recover_failures++;
        continue;
      }
    }

    RecoveredGraph recovered;
    recovered.name = entry.name;
    recovered.source = entry.source;

    // Replay the WAL tail, proving every step: a record must start from the
    // exact fingerprint the chain reached and land on the exact fingerprint
    // it recorded. Divergence means stale records (e.g. an epoch whose
    // snapshot rewrite superseded the log mid-crash) — stop there and
    // truncate the tail away.
    size_t replayed = 0;
    if (!records.empty()) {
      auto dyn =
          std::make_unique<DynamicGraph>(snapshot, entry.snapshot_version);
      for (const WalRecord& record : records) {
        if (record.base_fingerprint != dyn->fingerprint() ||
            record.version != dyn->version() + 1) {
          break;
        }
        UpdateSummary summary;
        if (!dyn->Apply(std::span<const UpdateOp>(record.ops), &summary)
                 .ok()) {
          break;
        }
        if (summary.fingerprint != record.fingerprint) {
          // The batch applied but produced different content than the log
          // promised; rebuild the pre-record state and stop the replay.
          auto redo =
              std::make_unique<DynamicGraph>(snapshot, entry.snapshot_version);
          for (size_t i = 0; i < replayed; ++i) {
            redo->Apply(std::span<const UpdateOp>(records[i].ops), nullptr);
          }
          dyn = std::move(redo);
          break;
        }
        ++replayed;
      }
      recovered.graph = dyn->snapshot();
      recovered.version = dyn->version();
      recovered.fingerprint = dyn->fingerprint();
    } else {
      recovered.version = entry.snapshot_version;
      recovered.fingerprint = entry.snapshot_fingerprint;
      recovered.graph =
          std::make_shared<const AttributedGraph>(std::move(snapshot));
    }
    recovered.wal_records_replayed = replayed;
    obs::EventJournal::Default().Record(obs::EventType::kRecoveryStep,
                                        recovered.version, replayed, 0,
                                        entry.name.c_str());

    // Drop whatever the replay could not prove, so later appends continue
    // the durable chain from the state actually served.
    stripe->chain.clear();
    stripe->poisoned = false;
    stripe->writer.reset();
    bool tail_clean = true;
    if (replayed < records.size() || torn_tail) {
      if (replayed == 0) {
        RemoveFileIfExists(FullPath(entry.wal_file));
        ManifestEntry updated = entry;
        updated.wal_file.clear();
        {
          fc::MutexLock manifest_lock(manifest_mu_);
          if (ManifestEntry* existing = manifest_.Find(entry.name)) {
            *existing = updated;
          }
          Status save = SaveManifest(manifest_, ManifestPath());
          if (!save.ok()) {
            FC_LOG(kWarning) << "could not unreference the dropped WAL of '"
                             << entry.name << "': " << save.ToString();
          }
        }
        entry = updated;
      } else {
        std::string rewritten;
        for (size_t i = 0; i < replayed; ++i) {
          rewritten += SerializeWalFrame(records[i]);
        }
        Status rewrite =
            AtomicWriteFile(FullPath(entry.wal_file), rewritten);
        if (!rewrite.ok()) {
          FC_LOG(kWarning) << "could not truncate stale WAL tail of '"
                           << entry.name << "': " << rewrite.ToString();
          tail_clean = false;
        }
      }
    }
    // Prime the append chain only when the on-disk log really ends at the
    // replayed state: appending after a stale tail that survived a failed
    // rewrite would fsync records the next recovery throws away. Leaving
    // the chain empty routes the next epoch down OnReplace's
    // snapshot-rewrite path instead, which drops the bad log entirely.
    if (replayed > 0 && tail_clean) {
      for (size_t i = 0; i < replayed; ++i) {
        stripe->chain.emplace_back(records[i].version,
                                   records[i].fingerprint);
      }
    }
    stripe->published_version =
        std::max(stripe->published_version, recovered.version);

    {
      fc::MutexLock counter_lock(counters_mu_);
      counters_.wal_records_replayed += replayed;
      counters_.recoveries++;
    }
    out->push_back(std::move(recovered));
  }
  return Status::OK();
}

Status StorageManager::SaveWarmEntries(std::span<const WarmEntry> entries) {
  fc::MutexLock lock(warm_mu_);
  FAIRCLIQUE_RETURN_NOT_OK(SaveWarmFile(FullPath(kWarmFileName), entries));
  fc::MutexLock counter_lock(counters_mu_);
  counters_.warm_entries_saved += entries.size();
  return Status::OK();
}

Status StorageManager::LoadWarmEntries(std::vector<WarmEntry>* out) {
  fc::MutexLock lock(warm_mu_);
  Status status = LoadWarmFile(FullPath(kWarmFileName), out);
  if (status.IsNotFound()) {
    out->clear();
    return Status::OK();
  }
  return status;
}

void StorageManager::NoteWarmRestore(size_t restored, size_t rejected) {
  fc::MutexLock lock(counters_mu_);
  counters_.warm_entries_restored += restored;
  counters_.warm_entries_rejected += rejected;
}

StorageCounters StorageManager::counters() const {
  fc::MutexLock lock(counters_mu_);
  StorageCounters copy = counters_;
  copy.wal_group_commits =
      wal_group_commits_->load(std::memory_order_relaxed);
  copy.wal_records_appended =
      wal_records_appended_->load(std::memory_order_relaxed);
  return copy;
}

}  // namespace storage
}  // namespace fairclique
