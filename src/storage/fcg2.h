#ifndef FAIRCLIQUE_STORAGE_FCG2_H_
#define FAIRCLIQUE_STORAGE_FCG2_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace fairclique {
namespace storage {

/// FCG2: the sectioned, mmap-friendly snapshot container. Where FCG1
/// (graph/binary_io.h) stores the edge list and rebuilds the CSR arrays on
/// every load, FCG2 stores the CSR arrays themselves, 8-byte aligned, each
/// section length- and checksum-framed, so a load is mmap + verify + adopt
/// (AttributedGraph::FromCsr) — no parsing, no sorting, no allocation
/// proportional to the graph.
///
/// Layout (all integers little-endian):
///
///   header (32 bytes)
///     0  magic "FCG2"
///     4  u32 format_version (= 1)
///     8  u32 num_vertices
///    12  u32 num_edges
///    16  u32 max_degree
///    20  u32 section_count (= 5)
///    24  u64 file_size            -- total; rejects trailing garbage
///   section table (section_count * 32 bytes)
///     per section: u32 kind, u32 reserved, u64 offset, u64 length,
///                  u64 checksum (FNV-1a over the section bytes)
///   u64 table_checksum            -- FNV-1a over header + section table
///   sections, each starting at an 8-byte-aligned offset:
///     kind 1  offsets     (num_vertices + 1) * u64
///     kind 2  adjacency   2 * num_edges * u32
///     kind 3  edge_ids    2 * num_edges * u32
///     kind 4  edges       num_edges * (u32 u, u32 v), u < v, sorted
///     kind 5  attributes  num_vertices * u8 (0 = a, 1 = b)
///
/// Load-time validation: magic/version/file size, table checksum, per-
/// section bounds + alignment + expected length + checksum, then O(V + E)
/// structural scans establishing every invariant FromCsr's adopters rely
/// on: offsets monotone and spanning, endpoints in range, attribute bytes
/// <= 1, max_degree consistent, adjacency rows strictly sorted, edge ids
/// wired to their {u, v} pairs. A checksum-consistent file from a buggy
/// external writer is rejected, not silently mis-searched.

/// First bytes of every FCG2 file, for format sniffing.
inline constexpr char kFcg2Magic[4] = {'F', 'C', 'G', '2'};

/// Writes `g` as an FCG2 container. Atomic: writes "<path>.tmp", fsyncs,
/// renames over `path`, so a crash never leaves a half-written snapshot
/// under the final name.
Status SaveFcg2(const AttributedGraph& g, const std::string& path);

/// Maps `path` and adopts its CSR sections zero-copy: `out` views the mapped
/// pages and keeps the mapping alive (shared with all copies). Fails with
/// Corruption on any validation failure, IOError when the file cannot be
/// mapped.
Status LoadFcg2(const std::string& path, AttributedGraph* out);

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_FCG2_H_
