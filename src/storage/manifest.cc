#include "storage/manifest.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "graph/fingerprint.h"
#include "storage/format_util.h"
#include "storage/io_util.h"

namespace fairclique {
namespace storage {

namespace {

constexpr char kHeaderLine[] = "fairclique-manifest v1";

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

std::string EscapeToken(const std::string& s) {
  if (s.empty()) return "%";  // a lone '%' is never a valid escape sequence
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c > ' ' && c < 0x7f && c != '%') {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    }
  }
  return out;
}

bool UnescapeToken(const std::string& token, std::string* out) {
  if (token == "%") {
    out->clear();
    return true;
  }
  out->clear();
  out->reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out->push_back(token[i]);
      continue;
    }
    int hi = 0, lo = 0;
    if (i + 2 >= token.size() || !HexDigit(token[i + 1], &hi) ||
        !HexDigit(token[i + 2], &lo)) {
      return false;
    }
    out->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

ManifestEntry* Manifest::Find(const std::string& name) {
  for (ManifestEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void Manifest::Remove(const std::string& name) {
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&name](const ManifestEntry& e) {
                                 return e.name == name;
                               }),
                entries.end());
}

Status SaveManifest(const Manifest& manifest, const std::string& path) {
  std::string body = std::string(kHeaderLine) + "\n";
  for (const ManifestEntry& e : manifest.entries) {
    body += "graph " + EscapeToken(e.name) + " " +
            EscapeToken(e.snapshot_file) + " " +
            (e.wal_file.empty() ? "-" : EscapeToken(e.wal_file)) + " " +
            std::to_string(e.snapshot_version) + " " +
            FingerprintHex(e.snapshot_fingerprint) + " " +
            EscapeToken(e.source) + "\n";
  }
  body += "checksum " + FingerprintHex(Checksum(AsBytes(body))) + "\n";
  return AtomicWriteFile(path, body);
}

Status LoadManifest(const std::string& path, Manifest* out) {
  std::string contents;
  FAIRCLIQUE_RETURN_NOT_OK(ReadFile(path, &contents));
  out->entries.clear();

  // Split off and verify the checksum line first: it covers every byte
  // before it.
  size_t checksum_pos = contents.rfind("checksum ");
  if (checksum_pos == std::string::npos ||
      (checksum_pos != 0 && contents[checksum_pos - 1] != '\n')) {
    return Status::Corruption("manifest " + path + ": missing checksum line");
  }
  std::string checksum_line = contents.substr(checksum_pos);
  while (!checksum_line.empty() &&
         (checksum_line.back() == '\n' || checksum_line.back() == '\r')) {
    checksum_line.pop_back();
  }
  uint64_t declared = 0;
  if (!ParseHex64(checksum_line.substr(9), &declared)) {
    return Status::Corruption("manifest " + path + ": bad checksum token");
  }
  const std::string body = contents.substr(0, checksum_pos);
  if (Checksum(AsBytes(body)) != declared) {
    return Status::Corruption("manifest " + path + ": checksum mismatch");
  }

  std::istringstream in(body);
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string at =
        "manifest " + path + ":" + std::to_string(line_no) + ": ";
    if (!saw_header) {
      if (line != kHeaderLine) {
        return Status::Corruption(at + "bad header line");
      }
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "graph") {
      return Status::Corruption(at + "unknown record '" + tag + "'");
    }
    std::string name_tok, snap_tok, wal_tok, version_tok, fp_tok, source_tok;
    if (!(ls >> name_tok >> snap_tok >> wal_tok >> version_tok >> fp_tok >>
          source_tok)) {
      return Status::Corruption(at + "short graph record");
    }
    ManifestEntry entry;
    if (!UnescapeToken(name_tok, &entry.name) ||
        !UnescapeToken(snap_tok, &entry.snapshot_file) ||
        !UnescapeToken(source_tok, &entry.source)) {
      return Status::Corruption(at + "bad escaped token");
    }
    if (wal_tok != "-" && !UnescapeToken(wal_tok, &entry.wal_file)) {
      return Status::Corruption(at + "bad wal token");
    }
    if (!ParseU64(version_tok, &entry.snapshot_version) ||
        !ParseHex64(fp_tok, &entry.snapshot_fingerprint)) {
      return Status::Corruption(at + "bad version/fingerprint");
    }
    out->entries.push_back(std::move(entry));
  }
  if (!saw_header) {
    return Status::Corruption("manifest " + path + ": empty file");
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace fairclique
