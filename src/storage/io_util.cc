#include "storage/io_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"

namespace fairclique {
namespace storage {

namespace {

Status WriteAll(int fd, const std::string& bytes, const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write failed: " + path + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir;
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for writing: " + tmp + ": " +
                           std::strerror(errno));
  }
  Status status = WriteAll(fd, bytes, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IOError("fsync failed: " + tmp + ": " +
                             std::strerror(errno));
  }
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status rename_status = Status::IOError("rename failed: " + tmp + " -> " +
                                           path + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return rename_status;
  }
  SyncParentDir(path);
  return Status::OK();
}

Status OpenAppendFd(const std::string& path, int* fd, bool* created) {
  // Open-then-create so we know whether a directory entry was just born:
  // fsync on the file alone does not persist a *new* entry, and losing the
  // whole file to a power cut would silently drop an acknowledged record.
  if (created != nullptr) *created = false;
  *fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (*fd < 0 && errno == ENOENT) {
    *fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
    if (created != nullptr) *created = *fd >= 0;
  }
  if (*fd < 0) {
    return Status::IOError("cannot open for append: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status AppendAndSyncFd(int fd, const std::string& path,
                       const std::string& bytes) {
  FAIRCLIQUE_RETURN_NOT_OK(WriteAll(fd, bytes, path));
  WallTimer fsync_timer;
  if (::fsync(fd) != 0) {
    return Status::IOError("fsync failed: " + path + ": " +
                           std::strerror(errno));
  }
  // Every durable-append path (group commits and single-record fallbacks)
  // funnels through this fsync, so one histogram (and one journal
  // breadcrumb) covers them all.
  const int64_t fsync_micros = fsync_timer.ElapsedMicros();
  obs::WalFsyncHistogram()->Record(fsync_micros);
  obs::EventJournal::Default().Record(obs::EventType::kWalFsync,
                                      static_cast<uint64_t>(fsync_micros),
                                      bytes.size());
  return Status::OK();
}

Status DurableAppend(const std::string& path, const std::string& bytes) {
  bool created = false;
  int fd = -1;
  FAIRCLIQUE_RETURN_NOT_OK(OpenAppendFd(path, &fd, &created));
  Status status = AppendAndSyncFd(fd, path, bytes);
  ::close(fd);
  if (status.ok() && created) SyncParentDir(path);
  // Both durable-append producers are WAL writers: the per-record fallback
  // here and the group-commit leader (which counts its own batches).
  if (status.ok()) obs::WalBytesWrittenCounter()->Increment(bytes.size());
  return status;
}

Status ReadFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError("cannot open: " + path + ": " +
                           std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IOError("read failed: " + path + ": " +
                                      std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

void RemoveFileIfExists(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace storage
}  // namespace fairclique
