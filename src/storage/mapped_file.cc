#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fairclique {
namespace storage {

Status MappedFile::Open(const std::string& path,
                        std::shared_ptr<const MappedFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IOError("cannot stat " + path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status status = Status::IOError("cannot mmap " + path + ": " +
                                      std::strerror(errno));
      ::close(fd);
      return status;
    }
  }
  // The mapping persists past close(2); holding the fd would only pin a
  // descriptor table slot per loaded graph.
  ::close(fd);
  out->reset(new MappedFile(addr, size));
  return Status::OK();
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace storage
}  // namespace fairclique
