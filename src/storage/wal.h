#ifndef FAIRCLIQUE_STORAGE_WAL_H_
#define FAIRCLIQUE_STORAGE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/dynamic_graph.h"

namespace fairclique {
namespace storage {

/// One durable update batch: the DynamicGraph epoch transition it performs
/// (base fingerprint/version -> new fingerprint/version) plus the ops
/// themselves, so recovery can replay it and *prove* it replayed correctly
/// by comparing fingerprints at every step.
struct WalRecord {
  uint64_t base_fingerprint = 0;  // snapshot fingerprint before the batch
  uint64_t fingerprint = 0;       // snapshot fingerprint after
  uint64_t version = 0;           // epoch after the batch
  std::vector<UpdateOp> ops;
};

/// On-disk framing, per record (little-endian):
///   u32 magic "FWR1"
///   u32 payload_length
///   u64 payload checksum (FNV-1a)
///   payload: u64 base_fingerprint, u64 fingerprint, u64 version,
///            u32 op_count, op_count * (u8 kind, u8 attr, u16 reserved,
///            u32 u, u32 v)
///
/// AppendWalRecord appends one framed record and fsyncs before returning —
/// the write-ahead property: the record is durable before the in-memory
/// epoch is published. A crash mid-append leaves a torn tail; ReadWal stops
/// cleanly at the first frame that fails the magic/length/checksum check and
/// reports it via `truncated_tail` instead of failing the whole log, because
/// a torn tail is the *expected* crash artifact, not corruption of committed
/// records. The two are distinguished by what FOLLOWS the failure: a crash
/// can only tear the very end of the file, so a decodable record after the
/// failed frame proves mid-file corruption of fsync-acknowledged history,
/// and ReadWal then fails with Corruption (recovery must refuse loudly, not
/// silently truncate committed records away).
Status AppendWalRecord(const std::string& path, const WalRecord& record);

/// One framed record as raw bytes (what AppendWalRecord appends). Exposed so
/// recovery can rewrite a log minus its stale tail with identical framing.
std::string SerializeWalFrame(const WalRecord& record);

/// Reads every intact record of `path` in order. Missing file -> OK with no
/// records (an empty WAL and an absent WAL are the same state). A framing
/// failure with no decodable successor is a torn tail (OK +
/// `truncated_tail`); one with a decodable successor is mid-file corruption
/// (Corruption; `out` still holds the intact prefix before the failure).
Status ReadWal(const std::string& path, std::vector<WalRecord>* out,
               bool* truncated_tail = nullptr);

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_WAL_H_
