#ifndef FAIRCLIQUE_STORAGE_STORAGE_MANAGER_H_
#define FAIRCLIQUE_STORAGE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "storage/group_commit.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "storage/warm_file.h"

namespace fairclique {
namespace storage {

/// Monotonic counters since Open; surfaced by the server's stats/metrics
/// command.
struct StorageCounters {
  uint64_t snapshots_written = 0;   // FCG2 files written (incl. compactions)
  uint64_t wal_records_appended = 0;  // records acknowledged durable
  uint64_t wal_group_commits = 0;   // write+fsync groups issued by leaders
  uint64_t wal_records_replayed = 0;
  uint64_t compactions = 0;         // snapshot rewrites that truncated a WAL
  uint64_t recoveries = 0;          // graphs recovered by RecoverAll
  uint64_t recover_failures = 0;    // manifest entries skipped on recovery
  uint64_t warm_entries_saved = 0;
  uint64_t warm_entries_restored = 0;
  uint64_t warm_entries_rejected = 0;  // failed the verifier check on restore
};

/// One graph brought back by RecoverAll: the post-replay snapshot at its
/// correct epoch. `graph` is the zero-copy mmap view when no WAL records
/// were replayed, or the rematerialized snapshot after replay.
struct RecoveredGraph {
  std::string name;
  std::shared_ptr<const AttributedGraph> graph;
  uint64_t version = 0;
  uint64_t fingerprint = 0;
  std::string source;
  uint64_t wal_records_replayed = 0;
};

/// The durable side of the query service: owns a data directory holding
///
///   MANIFEST                          catalog (manifest.h), atomic replace
///   <name>-<hash>.<ver>.<fp>.fcg2     one FCG2 snapshot per graph
///   <name>-<hash>.<ver>.<fp>.fcg2.wal updates applied since that snapshot
///   warm.cache                        persisted exact result-cache entries
///
/// Write path: PersistGraph snapshots a freshly loaded graph; AppendUpdate
/// logs each DynamicGraph batch (fsync'd) *before* the epoch is published;
/// OnReplace (the GraphRegistry write-through hook) verifies the WAL tail
/// covers the published epoch — rewriting the snapshot when it does not —
/// and compacts (fresh snapshot + WAL truncation) once the tail exceeds
/// `Options::wal_compaction_threshold` records.
///
/// Recovery path: RecoverAll loads every manifest entry's snapshot
/// (fingerprint-revalidated — content addressing makes durable state
/// exactly checkable), replays its WAL tail through a DynamicGraph with the
/// fingerprint chain verified record by record, and truncates any stale or
/// torn tail (mid-file corruption — an intact record *after* the failure —
/// fails that graph's recovery loudly instead; see ReadWal). Crash safety
/// relies on ordering, not luck: snapshot files are versioned and published
/// by rename, the manifest is replaced atomically, and a WAL file is
/// referenced by the manifest before its first record is written.
///
/// Thread-safe, and striped per graph name: each registered name owns a
/// stripe (mutex + WAL chain + group-commit writer), so a snapshot rewrite
/// of one graph never blocks another graph's appends. Global locks guard
/// only the name->stripe map and the manifest (every stripe's catalog
/// mutation serializes briefly on the shared MANIFEST file). Appends to ONE
/// graph are chained (each record's base fingerprint is the previous
/// record's result), so concurrent writers of the same graph use the
/// two-phase AppendUpdateAsync/Wait: enqueue in chain order under their own
/// ordering lock, then block for the group fsync outside it — which is what
/// lets N batches share one fsync.
class StorageManager {
 private:
  /// Per-graph durable state; all of one graph's catalog and WAL mutations
  /// serialize on its `mu`, independent of every other graph's. Defined in
  /// the .cc.
  struct Stripe;

 public:
  struct Options {
    /// WAL records per graph beyond which OnReplace compacts.
    size_t wal_compaction_threshold = 64;
    /// Group-commit WAL appends (storage/group_commit.h): concurrent
    /// appenders' frames are written and fsync'd as one group by a leader.
    /// false restores the single-writer fallback — one
    /// open+write+fsync+close per record (io_util's DurableAppend) — which
    /// benchmarks use as the baseline.
    bool group_commit = true;
    /// Extra time a group-commit leader lingers for more appenders before
    /// draining (latency traded for larger groups); 0 = drain immediately.
    int64_t group_window_micros = 0;
  };

  /// One in-flight WAL append from AppendUpdateAsync. Wait() blocks until
  /// the record's commit group is durable and returns the append's final
  /// status — the write-ahead contract holds exactly when it returns OK,
  /// and only then may the caller publish the epoch. Idempotent; the
  /// destructor waits if the caller never did (the status is then lost, so
  /// don't).
  class AppendTicket {
   public:
    AppendTicket() = default;
    ~AppendTicket();
    /// Moves transfer the wait obligation: the moved-from ticket resolves
    /// immediately (it no longer owes a Wait), and move-assigning onto a
    /// still-pending ticket settles the target first.
    AppendTicket(AppendTicket&& other) noexcept;
    AppendTicket& operator=(AppendTicket&& other) noexcept;
    AppendTicket(const AppendTicket&) = delete;
    AppendTicket& operator=(const AppendTicket&) = delete;

    Status Wait();

   private:
    friend class StorageManager;

    /// Everything Wait() touches is owned via shared_ptr (the stripe, the
    /// writer, the records counter), so a ticket stays safe to Wait on
    /// even after the StorageManager itself is destroyed.
    std::shared_ptr<Stripe> stripe_;  // keeps the stripe alive
    std::shared_ptr<GroupCommitWal> wal_;
    std::shared_ptr<std::atomic<uint64_t>> records_counter_;
    GroupCommitWal::Ticket ticket_;
    bool pending_ = false;  // true: must Wait on wal_; false: result_ final
    Status result_;
  };

  /// Opens (creating if needed) `data_dir`, loads the manifest and the
  /// per-graph WAL state, and removes unreferenced snapshot/WAL/tmp files
  /// left by a crash mid-compaction.
  static Status Open(const std::string& data_dir, const Options& options,
                     std::unique_ptr<StorageManager>* out);

  ~StorageManager();

  const std::string& dir() const { return dir_; }

  /// Writes a fresh FCG2 snapshot for `name` and points the manifest at it,
  /// dropping any WAL (the snapshot supersedes it). Write-through target of
  /// GraphRegistry::Load/Add; also the compaction primitive.
  Status PersistGraph(const std::string& name, const AttributedGraph& g,
                      uint64_t version, uint64_t fingerprint,
                      const std::string& source);

  /// Durably appends one update batch to `name`'s WAL: AppendUpdateAsync +
  /// Wait. Must complete BEFORE the new epoch is published (the write-ahead
  /// contract). Fails with NotFound when the name was never persisted and
  /// InvalidArgument when the batch does not continue the durable
  /// fingerprint chain (the registry's OnReplace fallback then rewrites the
  /// snapshot instead).
  Status AppendUpdate(const std::string& name, const UpdateSummary& summary,
                      std::span<const UpdateOp> ops);

  /// Two-phase append for concurrent writers: validates the chain and
  /// enqueues the record's frame on the graph's group-commit queue, then
  /// returns; durability arrives at `ticket->Wait()`. Callers that must
  /// keep one graph's batches in order hold their ordering lock across
  /// (DynamicGraph::Apply, AppendUpdateAsync) and Wait outside it, so
  /// several batches ride one fsync. A non-OK return means nothing was
  /// enqueued (the ticket resolves to the same status).
  Status AppendUpdateAsync(const std::string& name,
                           const UpdateSummary& summary,
                           std::span<const UpdateOp> ops,
                           AppendTicket* ticket);

  /// GraphRegistry::Replace write-through: checks that the durable state
  /// covers the just-published epoch (snapshot version + WAL chain ==
  /// (version, fingerprint)); rewrites the snapshot when it does not, and
  /// compacts when the WAL tail crossed the threshold. Epochs older than
  /// one already handled are ignored, so callers may invoke it outside
  /// their own publish lock without risking a durable rollback.
  Status OnReplace(const std::string& name, const AttributedGraph& snapshot,
                   uint64_t version, uint64_t fingerprint);

  /// Drops `name` from the manifest and deletes its files
  /// (GraphRegistry::Evict write-through). Unknown names are OK (idempotent).
  Status Forget(const std::string& name);

  /// Recovers every graph in the manifest except those named in
  /// `skip_names` (graphs the caller already serves — re-reading their
  /// snapshots and replaying their WALs would be wasted I/O and would
  /// double-count the recovery counters). Entries whose snapshot or WAL
  /// fail validation are skipped (counted in recover_failures) rather than
  /// failing the graphs that are intact.
  Status RecoverAll(std::vector<RecoveredGraph>* out,
                    const std::set<std::string>* skip_names = nullptr);

  /// Persists / loads the warm result-cache file. Loading an absent file
  /// yields OK and no entries.
  Status SaveWarmEntries(std::span<const WarmEntry> entries);
  Status LoadWarmEntries(std::vector<WarmEntry>* out);

  /// Restore-side bookkeeping for the verifier check the caller performs
  /// (the caller owns the cache and the graphs; storage owns the counters).
  void NoteWarmRestore(size_t restored, size_t rejected);

  StorageCounters counters() const;

 private:
  StorageManager(std::string dir, const Options& options)
      : dir_(std::move(dir)), options_(options) {}

  std::string FullPath(const std::string& file) const { return dir_ + "/" + file; }
  std::string ManifestPath() const { return FullPath("MANIFEST"); }
  /// "<sanitized-name>-<fnv-hex8>": unique, filesystem-safe stem per name.
  static std::string FileStem(const std::string& name);

  std::shared_ptr<Stripe> GetStripe(const std::string& name) const;
  std::shared_ptr<Stripe> GetOrCreateStripe(const std::string& name);

  /// Writes a fresh snapshot for the stripe and publishes it in the
  /// manifest (under manifest_mu_). Caller holds the stripe's mu — Stripe
  /// is incomplete here so the contract cannot be spelled
  /// REQUIRES(stripe.mu); the body opens with stripe.mu.AssertHeld()
  /// instead.
  Status PersistStripeLocked(Stripe& stripe, const std::string& name,
                             const AttributedGraph& g, uint64_t version,
                             uint64_t fingerprint, const std::string& source,
                             bool is_compaction) EXCLUDES(manifest_mu_);
  void RemoveUnreferencedFiles();

  const std::string dir_;
  const Options options_;

  /// Guards stripes_ only (leaf lock; never held together with a stripe's
  /// mu or manifest_mu_). Stripes are never erased — a forgotten name keeps
  /// an unregistered stripe so a concurrent re-register cannot race the
  /// map itself.
  mutable fc::Mutex map_mu_;
  std::map<std::string, std::shared_ptr<Stripe>> stripes_ GUARDED_BY(map_mu_);

  /// Guards the in-memory manifest mirror and serializes MANIFEST file
  /// writes. Acquired after a stripe's mu, never before.
  fc::Mutex manifest_mu_;
  Manifest manifest_ GUARDED_BY(manifest_mu_);

  /// Guards the warm-cache file (a single global artifact).
  fc::Mutex warm_mu_;

  mutable fc::Mutex counters_mu_;
  StorageCounters counters_ GUARDED_BY(counters_mu_);
  /// Incremented by group-commit leaders (possibly after their stripe was
  /// compacted away, or even after this manager died while a ticket was
  /// still waiting), so it is shared with every writer, not a plain member.
  std::shared_ptr<std::atomic<uint64_t>> wal_group_commits_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  /// Durable-ack count, shared with outstanding AppendTickets so a Wait()
  /// completing after the manager's destruction touches owned memory only.
  std::shared_ptr<std::atomic<uint64_t>> wal_records_appended_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_STORAGE_MANAGER_H_
