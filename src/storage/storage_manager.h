#ifndef FAIRCLIQUE_STORAGE_STORAGE_MANAGER_H_
#define FAIRCLIQUE_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "storage/warm_file.h"

namespace fairclique {
namespace storage {

/// Monotonic counters since Open; surfaced by the server's stats/metrics
/// command.
struct StorageCounters {
  uint64_t snapshots_written = 0;   // FCG2 files written (incl. compactions)
  uint64_t wal_records_appended = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t compactions = 0;         // snapshot rewrites that truncated a WAL
  uint64_t recoveries = 0;          // graphs recovered by RecoverAll
  uint64_t recover_failures = 0;    // manifest entries skipped on recovery
  uint64_t warm_entries_saved = 0;
  uint64_t warm_entries_restored = 0;
  uint64_t warm_entries_rejected = 0;  // failed the verifier check on restore
};

/// One graph brought back by RecoverAll: the post-replay snapshot at its
/// correct epoch. `graph` is the zero-copy mmap view when no WAL records
/// were replayed, or the rematerialized snapshot after replay.
struct RecoveredGraph {
  std::string name;
  std::shared_ptr<const AttributedGraph> graph;
  uint64_t version = 0;
  uint64_t fingerprint = 0;
  std::string source;
  uint64_t wal_records_replayed = 0;
};

/// The durable side of the query service: owns a data directory holding
///
///   MANIFEST                          catalog (manifest.h), atomic replace
///   <name>-<hash>.<ver>.<fp>.fcg2     one FCG2 snapshot per graph
///   <name>-<hash>.<ver>.<fp>.fcg2.wal updates applied since that snapshot
///   warm.cache                        persisted exact result-cache entries
///
/// Write path: PersistGraph snapshots a freshly loaded graph; AppendUpdate
/// logs each DynamicGraph batch (fsync'd) *before* the epoch is published;
/// OnReplace (the GraphRegistry write-through hook) verifies the WAL tail
/// covers the published epoch — rewriting the snapshot when it does not —
/// and compacts (fresh snapshot + WAL truncation) once the tail exceeds
/// `Options::wal_compaction_threshold` records.
///
/// Recovery path: RecoverAll loads every manifest entry's snapshot
/// (fingerprint-revalidated — content addressing makes durable state
/// exactly checkable), replays its WAL tail through a DynamicGraph with the
/// fingerprint chain verified record by record, and truncates any stale or
/// torn tail. Crash safety relies on ordering, not luck: snapshot files are
/// versioned and published by rename, the manifest is replaced atomically,
/// and a WAL file is referenced by the manifest before its first record is
/// written.
///
/// Thread-safe: one internal mutex serializes all operations (safety, not
/// parallelism — a snapshot write blocks other graphs' appends for its
/// duration; per-graph locking is an open item once multi-writer workloads
/// exist — today the server's command loop is the only writer).
class StorageManager {
 public:
  struct Options {
    /// WAL records per graph beyond which OnReplace compacts.
    size_t wal_compaction_threshold = 64;
  };

  /// Opens (creating if needed) `data_dir`, loads the manifest and the
  /// per-graph WAL state, and removes unreferenced snapshot/WAL/tmp files
  /// left by a crash mid-compaction.
  static Status Open(const std::string& data_dir, const Options& options,
                     std::unique_ptr<StorageManager>* out);

  const std::string& dir() const { return dir_; }

  /// Writes a fresh FCG2 snapshot for `name` and points the manifest at it,
  /// dropping any WAL (the snapshot supersedes it). Write-through target of
  /// GraphRegistry::Load/Add; also the compaction primitive.
  Status PersistGraph(const std::string& name, const AttributedGraph& g,
                      uint64_t version, uint64_t fingerprint,
                      const std::string& source);

  /// Durably appends one update batch to `name`'s WAL. Must be called
  /// BEFORE the new epoch is published (the write-ahead contract). Fails
  /// with NotFound when the name was never persisted and InvalidArgument
  /// when the batch does not continue the durable fingerprint chain (the
  /// registry's OnReplace fallback then rewrites the snapshot instead).
  Status AppendUpdate(const std::string& name, const UpdateSummary& summary,
                      std::span<const UpdateOp> ops);

  /// GraphRegistry::Replace write-through: checks that the durable state
  /// covers the just-published epoch (snapshot version + WAL tail ==
  /// (version, fingerprint)); rewrites the snapshot when it does not, and
  /// compacts when the WAL tail crossed the threshold.
  Status OnReplace(const std::string& name, const AttributedGraph& snapshot,
                   uint64_t version, uint64_t fingerprint);

  /// Drops `name` from the manifest and deletes its files
  /// (GraphRegistry::Evict write-through). Unknown names are OK (idempotent).
  Status Forget(const std::string& name);

  /// Recovers every graph in the manifest except those named in
  /// `skip_names` (graphs the caller already serves — re-reading their
  /// snapshots and replaying their WALs would be wasted I/O and would
  /// double-count the recovery counters). Entries whose snapshot or WAL
  /// fail validation are skipped (counted in recover_failures) rather than
  /// failing the graphs that are intact.
  Status RecoverAll(std::vector<RecoveredGraph>* out,
                    const std::set<std::string>* skip_names = nullptr);

  /// Persists / loads the warm result-cache file. Loading an absent file
  /// yields OK and no entries.
  Status SaveWarmEntries(std::span<const WarmEntry> entries);
  Status LoadWarmEntries(std::vector<WarmEntry>* out);

  /// Restore-side bookkeeping for the verifier check the caller performs
  /// (the caller owns the cache and the graphs; storage owns the counters).
  void NoteWarmRestore(size_t restored, size_t rejected);

  StorageCounters counters() const;

 private:
  struct WalState {
    size_t records = 0;
    uint64_t last_version = 0;
    uint64_t last_fingerprint = 0;
  };

  StorageManager(std::string dir, const Options& options)
      : dir_(std::move(dir)), options_(options) {}

  std::string FullPath(const std::string& file) const { return dir_ + "/" + file; }
  std::string ManifestPath() const { return FullPath("MANIFEST"); }
  /// "<sanitized-name>-<fnv-hex8>": unique, filesystem-safe stem per name.
  static std::string FileStem(const std::string& name);

  Status PersistGraphLocked(const std::string& name, const AttributedGraph& g,
                            uint64_t version, uint64_t fingerprint,
                            const std::string& source, bool is_compaction);
  void RemoveEntryFilesLocked(const ManifestEntry& entry);
  void RemoveUnreferencedFilesLocked();

  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;
  Manifest manifest_;  // in-memory source of truth, mirrored to disk
  std::map<std::string, WalState> wal_state_;
  StorageCounters counters_;
};

}  // namespace storage
}  // namespace fairclique

#endif  // FAIRCLIQUE_STORAGE_STORAGE_MANAGER_H_
