#include "storage/fcg2.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "storage/format_util.h"
#include "storage/io_util.h"
#include "storage/mapped_file.h"

namespace fairclique {
namespace storage {

namespace {

// The adjacency/edge/attribute sections are reinterpreted in place from the
// mapped file, so their in-memory layouts must match the on-disk ones.
static_assert(sizeof(Edge) == 8 && sizeof(VertexId) == 4 &&
                  sizeof(EdgeId) == 4,
              "FCG2 reinterprets mapped sections as these types");

constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kSectionCount = 5;
constexpr size_t kHeaderSize = 32;
constexpr size_t kSectionEntrySize = 32;
constexpr size_t kTableChecksumOffset =
    kHeaderSize + kSectionCount * kSectionEntrySize;  // 192
constexpr size_t kFirstSectionOffset = kTableChecksumOffset + 8;  // 200

enum SectionKind : uint32_t {
  kOffsets = 1,
  kAdjacency = 2,
  kEdgeIds = 3,
  kEdges = 4,
  kAttributes = 5,
};

struct Section {
  uint32_t kind = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

size_t Padded8(size_t n) { return (n + 7) & ~size_t{7}; }

Status Bad(const std::string& path, const std::string& what) {
  return Status::Corruption("FCG2 " + path + ": " + what);
}

}  // namespace

Status SaveFcg2(const AttributedGraph& g, const std::string& path) {
  const auto offsets = g.csr_offsets();
  const auto adjacency = g.csr_adjacency();
  const auto edge_ids = g.csr_edge_ids();
  const auto edges = g.edges();
  const auto attrs = g.attribute_bytes();

  struct Payload {
    const void* data;
    size_t size;
    uint32_t kind;
  };
  // An empty (default-constructed) graph still serializes a one-entry
  // offsets section, matching what GraphBuilder(0).Build() produces.
  static const uint64_t kZeroOffset = 0;
  const Payload payloads[kSectionCount] = {
      {offsets.empty() ? static_cast<const void*>(&kZeroOffset)
                       : static_cast<const void*>(offsets.data()),
       (offsets.empty() ? 1 : offsets.size()) * sizeof(uint64_t), kOffsets},
      {adjacency.data(), adjacency.size() * sizeof(VertexId), kAdjacency},
      {edge_ids.data(), edge_ids.size() * sizeof(EdgeId), kEdgeIds},
      {edges.data(), edges.size() * sizeof(Edge), kEdges},
      {attrs.data(), attrs.size(), kAttributes},
  };

  // Lay out the sections first so the header can carry the total size.
  uint64_t cursor = kFirstSectionOffset;
  Section table[kSectionCount];
  for (size_t i = 0; i < kSectionCount; ++i) {
    table[i].kind = payloads[i].kind;
    table[i].offset = cursor;
    table[i].length = payloads[i].size;
    table[i].checksum = Checksum(payloads[i].data, payloads[i].size);
    cursor += Padded8(payloads[i].size);
  }
  const uint64_t file_size = cursor;

  std::string buf;
  buf.reserve(file_size);
  buf.append(kFcg2Magic, 4);
  PutU32(&buf, kFormatVersion);
  PutU32(&buf, g.num_vertices());
  PutU32(&buf, g.num_edges());
  PutU32(&buf, g.max_degree());
  PutU32(&buf, kSectionCount);
  PutU64(&buf, file_size);
  for (const Section& s : table) {
    PutU32(&buf, s.kind);
    PutU32(&buf, 0);  // reserved
    PutU64(&buf, s.offset);
    PutU64(&buf, s.length);
    PutU64(&buf, s.checksum);
  }
  PutU64(&buf, Checksum(buf.data(), kTableChecksumOffset));
  for (size_t i = 0; i < kSectionCount; ++i) {
    if (payloads[i].size > 0) {
      buf.append(static_cast<const char*>(payloads[i].data), payloads[i].size);
    }
    buf.append(Padded8(payloads[i].size) - payloads[i].size, '\0');
  }
  return AtomicWriteFile(path, buf);
}

Status LoadFcg2(const std::string& path, AttributedGraph* out) {
  std::shared_ptr<const MappedFile> file;
  FAIRCLIQUE_RETURN_NOT_OK(MappedFile::Open(path, &file));
  const std::span<const uint8_t> bytes = file->bytes();

  if (bytes.size() < kFirstSectionOffset ||
      std::memcmp(bytes.data(), kFcg2Magic, 4) != 0) {
    return Bad(path, "bad magic or truncated header");
  }
  size_t pos = 4;
  uint32_t version = 0, n = 0, m = 0, max_degree = 0, section_count = 0;
  uint64_t file_size = 0;
  GetU32(bytes, &pos, &version);
  GetU32(bytes, &pos, &n);
  GetU32(bytes, &pos, &m);
  GetU32(bytes, &pos, &max_degree);
  GetU32(bytes, &pos, &section_count);
  GetU64(bytes, &pos, &file_size);
  if (version != kFormatVersion) {
    return Bad(path, "unsupported format version " + std::to_string(version));
  }
  if (section_count != kSectionCount) {
    return Bad(path, "unexpected section count");
  }
  if (file_size != bytes.size()) {
    return Bad(path, "file size mismatch: header says " +
                         std::to_string(file_size) + ", have " +
                         std::to_string(bytes.size()) +
                         " (truncation or trailing garbage)");
  }

  Section table[kSectionCount];
  for (Section& s : table) {
    uint32_t reserved = 0;
    GetU32(bytes, &pos, &s.kind);
    GetU32(bytes, &pos, &reserved);
    GetU64(bytes, &pos, &s.offset);
    GetU64(bytes, &pos, &s.length);
    GetU64(bytes, &pos, &s.checksum);
  }
  uint64_t table_checksum = 0;
  GetU64(bytes, &pos, &table_checksum);
  if (table_checksum != Checksum(bytes.data(), kTableChecksumOffset)) {
    return Bad(path, "header/table checksum mismatch");
  }

  // Expected geometry from the header counts; a section table disagreeing
  // with the counts is corruption even when its checksums are self-
  // consistent.
  const uint64_t expected_length[kSectionCount] = {
      (static_cast<uint64_t>(n) + 1) * sizeof(uint64_t),
      2ull * m * sizeof(VertexId),
      2ull * m * sizeof(EdgeId),
      static_cast<uint64_t>(m) * sizeof(Edge),
      n,
  };
  for (size_t i = 0; i < kSectionCount; ++i) {
    const Section& s = table[i];
    if (s.kind != i + 1) return Bad(path, "section table out of order");
    if (s.length != expected_length[i]) {
      return Bad(path, "section " + std::to_string(s.kind) +
                           " length disagrees with header counts");
    }
    // Subtraction, not addition: offset + length could wrap in uint64 and
    // sneak a wild offset past the bound.
    if (s.offset % 8 != 0 || s.offset < kFirstSectionOffset ||
        s.length > bytes.size() || s.offset > bytes.size() - s.length) {
      return Bad(path, "section " + std::to_string(s.kind) +
                           " misaligned or out of bounds");
    }
    if (Checksum(bytes.data() + s.offset, s.length) != s.checksum) {
      return Bad(path, "section " + std::to_string(s.kind) +
                           " checksum mismatch");
    }
  }

  const auto* offsets =
      reinterpret_cast<const uint64_t*>(bytes.data() + table[0].offset);
  const auto* adjacency =
      reinterpret_cast<const VertexId*>(bytes.data() + table[1].offset);
  const auto* edge_ids =
      reinterpret_cast<const EdgeId*>(bytes.data() + table[2].offset);
  const auto* edges =
      reinterpret_cast<const Edge*>(bytes.data() + table[3].offset);
  const uint8_t* attrs = bytes.data() + table[4].offset;

  // Cheap structural scans: everything FromCsr's invariants rely on that a
  // checksum alone cannot promise (the writer could have been handed a
  // file produced by a buggy or hostile tool).
  if (offsets[0] != 0) return Bad(path, "offsets do not start at 0");
  uint32_t derived_max_degree = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      return Bad(path, "offsets not monotone at vertex " + std::to_string(v));
    }
    derived_max_degree = std::max(
        derived_max_degree, static_cast<uint32_t>(offsets[v + 1] - offsets[v]));
  }
  if (offsets[n] != 2ull * m) return Bad(path, "offsets do not span 2m");
  if (derived_max_degree != max_degree) {
    return Bad(path, "max_degree disagrees with offsets");
  }
  for (uint32_t e = 0; e < m; ++e) {
    if (edges[e].u >= edges[e].v || edges[e].v >= n) {
      return Bad(path, "edge " + std::to_string(e) + " not normalized");
    }
    // Strict sortedness is part of the edges() contract, and fingerprints
    // hash the array in order — a consistently-rewired permutation would
    // otherwise load fine yet fingerprint differently than its canonical
    // build, silently defeating content-addressed caching.
    if (e > 0 && !(edges[e - 1] < edges[e])) {
      return Bad(path, "edge list not strictly sorted");
    }
  }
  // Per-row scan: strictly sorted adjacency (binary searches depend on it)
  // and edge-id wiring (edge-indexed reductions address per-edge state
  // through it) — the invariants a buggy external writer is most likely to
  // violate while keeping its own checksums self-consistent.
  for (uint32_t v = 0; v < n; ++v) {
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId w = adjacency[i];
      if (w >= n) return Bad(path, "adjacency endpoint out of range");
      if (i > offsets[v] && adjacency[i - 1] >= w) {
        return Bad(path, "adjacency row " + std::to_string(v) +
                             " not strictly sorted");
      }
      const EdgeId e = edge_ids[i];
      if (e >= m) return Bad(path, "edge id out of range");
      if (edges[e].u != std::min(v, w) || edges[e].v != std::max(v, w)) {
        return Bad(path, "edge id wiring broken at vertex " +
                             std::to_string(v));
      }
    }
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (attrs[v] > 1) return Bad(path, "bad attribute byte");
  }

  *out = AttributedGraph::FromCsr(
      std::span<const uint64_t>(offsets, n + 1),
      std::span<const VertexId>(adjacency, 2ull * m),
      std::span<const EdgeId>(edge_ids, 2ull * m),
      std::span<const Edge>(edges, m), std::span<const uint8_t>(attrs, n),
      max_degree, std::move(file));
  return Status::OK();
}

}  // namespace storage
}  // namespace fairclique
