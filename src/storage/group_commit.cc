#include "storage/group_commit.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "storage/io_util.h"

namespace fairclique {
namespace storage {

GroupCommitWal::GroupCommitWal(
    std::string path, int64_t group_window_micros,
    std::shared_ptr<std::atomic<uint64_t>> groups_counter)
    : path_(std::move(path)),
      group_window_micros_(group_window_micros),
      groups_counter_(std::move(groups_counter)) {}

GroupCommitWal::~GroupCommitWal() {
  // No thread may still be committing here (callers keep the writer alive
  // until every ticket is waited on), but the analysis wants the guarded
  // fd_ read under its mutex, and the uncontended lock is free.
  fc::MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

GroupCommitWal::Ticket GroupCommitWal::Enqueue(std::string frame) {
  fc::MutexLock lock(mu_);
  pending_ += frame;
  ++pending_frames_;
  return Ticket{++next_seq_};
}

// NO_THREAD_SAFETY_ANALYSIS: the body drops and reacquires the caller's
// lock object around the group's IO; the analysis cannot tie a MutexLock
// received by reference back to mu_, so it would flag every guarded access
// after the relock. Call sites still enforce REQUIRES(mu_) from the header.
void GroupCommitWal::CommitGroupLocked(fc::MutexLock& lock)
    NO_THREAD_SAFETY_ANALYSIS {
  if (group_window_micros_ > 0 && sticky_error_.ok()) {
    // Linger so concurrent appenders can join this group — but only while
    // they actually keep arriving: the window bounds the added latency, it
    // is not a mandatory sleep. A spurious wakeup only shortens a slice;
    // correctness never depends on the timing.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(group_window_micros_);
    const auto slice = std::chrono::microseconds(
        std::max<int64_t>(1, group_window_micros_ / 4));
    uint64_t seen = pending_frames_;
    while (std::chrono::steady_clock::now() < deadline) {
      settled_.WaitFor(lock, slice);
      if (pending_frames_ == seen) break;  // arrivals stalled; commit now
      seen = pending_frames_;
    }
  }
  // Snapshot the group under the lock: frames enqueued while the IO runs
  // belong to the NEXT group, and settling past them would acknowledge
  // records that were never written.
  std::string batch = std::move(pending_);
  pending_.clear();
  const uint64_t frames = pending_frames_;
  pending_frames_ = 0;
  const uint64_t first = settled_seq_ + 1;
  const uint64_t last = next_seq_;

  Status status = sticky_error_;
  if (status.ok() && !batch.empty()) {
    lock.Unlock();
    if (fd_ < 0) {
      // fd_ is only ever touched by the (single) active leader, so the
      // unlocked access cannot race another writer thread.
      bool created = false;
      status = OpenAppendFd(path_, &fd_, &created);
      if (status.ok() && created) SyncParentDir(path_);
    }
    if (status.ok()) status = AppendAndSyncFd(fd_, path_, batch);
    lock.Lock();
    if (status.ok()) {
      stats_.groups++;
      stats_.records += frames;
      stats_.largest_group = std::max(stats_.largest_group, frames);
      if (groups_counter_ != nullptr) {
        groups_counter_->fetch_add(1, std::memory_order_relaxed);
      }
      obs::WalGroupFramesHistogram()->Record(static_cast<int64_t>(frames));
      obs::WalBytesWrittenCounter()->Increment(batch.size());
      obs::EventJournal::Default().Record(obs::EventType::kWalGroupCommit,
                                          frames, batch.size());
    }
  }
  if (!status.ok() && sticky_error_.ok()) {
    // The file may now end in a torn frame; writing anything after it
    // would turn a truncatable tail into mid-file corruption. Fail this
    // frame and every later one instead.
    sticky_error_ = status;
    first_failed_seq_ = first;
  }
  settled_seq_ = last;
}

Status GroupCommitWal::Wait(Ticket ticket) {
  fc::MutexLock lock(mu_);
  while (settled_seq_ < ticket.seq) {
    if (!leader_active_) {
      leader_active_ = true;
      CommitGroupLocked(lock);
      leader_active_ = false;
      settled_.NotifyAll();
    } else {
      settled_.Wait(lock);
    }
  }
  if (first_failed_seq_ != 0 && ticket.seq >= first_failed_seq_) {
    return sticky_error_;
  }
  return Status::OK();
}

GroupCommitStats GroupCommitWal::stats() const {
  fc::MutexLock lock(mu_);
  return stats_;
}

}  // namespace storage
}  // namespace fairclique
