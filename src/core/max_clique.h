#ifndef FAIRCLIQUE_CORE_MAX_CLIQUE_H_
#define FAIRCLIQUE_CORE_MAX_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Result of a (plain, fairness-free) maximum clique search.
struct MaxCliqueResult {
  std::vector<VertexId> clique;
  uint64_t nodes = 0;      // Branch nodes explored
  bool completed = true;   // false when node_limit stopped the search
};

/// Exact maximum clique via Tomita-style branch and bound: vertices are
/// ordered by degeneracy, candidate sets are greedily colored at every node
/// and branches with |R| + colors(C) <= |best| are pruned.
///
/// This is the classical problem the paper's related-work section builds on
/// (Chang KDD'19 etc.); it serves as (i) an upper bound oracle for the fair
/// variant (the fair clique can never be larger), and (ii) the baseline for
/// measuring how much the fairness constraints cost (bench_variants).
/// `node_limit` (0 = unlimited) stops long searches.
MaxCliqueResult FindMaximumClique(const AttributedGraph& g,
                                  uint64_t node_limit = 0);

/// Lower bound companion: greedy degeneracy-order clique (linear time).
std::vector<VertexId> GreedyCliqueLowerBound(const AttributedGraph& g);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_MAX_CLIQUE_H_
