#include "core/enumeration.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/cores.h"

namespace fairclique {

namespace {

// Recursive Bron-Kerbosch with pivoting over sorted candidate vectors.
// P and X are sorted by vertex id; R is the current clique.
struct BkState {
  const AttributedGraph& g;
  const std::function<void(const std::vector<VertexId>&)>& callback;
  uint64_t max_cliques;
  uint64_t found = 0;
  bool aborted = false;
  std::vector<VertexId> r;

  void Recurse(std::vector<VertexId>& p, std::vector<VertexId>& x) {
    if (aborted) return;
    if (p.empty() && x.empty()) {
      callback(r);
      ++found;
      if (max_cliques != 0 && found >= max_cliques) aborted = true;
      return;
    }
    // Pivot: vertex of P ∪ X maximizing |N(pivot) ∩ P|.
    VertexId pivot = kInvalidVertex;
    size_t best = 0;
    for (const std::vector<VertexId>* side : {&p, &x}) {
      for (VertexId u : *side) {
        size_t cnt = CountSortedIntersection(g.neighbors(u), p);
        if (pivot == kInvalidVertex || cnt > best) {
          pivot = u;
          best = cnt;
        }
      }
    }
    // Branch on P \ N(pivot).
    std::vector<VertexId> branch;
    {
      auto nbrs = g.neighbors(pivot);
      std::set_difference(p.begin(), p.end(), nbrs.begin(), nbrs.end(),
                          std::back_inserter(branch));
    }
    for (VertexId v : branch) {
      if (aborted) return;
      auto nbrs = g.neighbors(v);
      std::vector<VertexId> np, nx;
      std::set_intersection(p.begin(), p.end(), nbrs.begin(), nbrs.end(),
                            std::back_inserter(np));
      std::set_intersection(x.begin(), x.end(), nbrs.begin(), nbrs.end(),
                            std::back_inserter(nx));
      r.push_back(v);
      Recurse(np, nx);
      r.pop_back();
      // Move v from P to X.
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
    }
  }

  static size_t CountSortedIntersection(std::span<const VertexId> a,
                                        const std::vector<VertexId>& b) {
    size_t i = 0, j = 0, c = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++c;
        ++i;
        ++j;
      }
    }
    return c;
  }
};

}  // namespace

uint64_t EnumerateMaximalCliques(
    const AttributedGraph& g,
    const std::function<void(const std::vector<VertexId>&)>& callback,
    uint64_t max_cliques) {
  BkState state{g, callback, max_cliques, 0, false, {}};
  // Degeneracy-order outer loop (Eppstein-Löffler-Strash): process each
  // vertex v with P restricted to later neighbors and X to earlier ones.
  // Keeps the recursion's candidate sets at most degeneracy-sized, which is
  // what makes the oracle usable on the dataset stand-ins.
  CoreDecomposition cores = ComputeCores(g);
  for (VertexId v : cores.peel_order) {
    if (state.aborted) break;
    std::vector<VertexId> p, x;
    for (VertexId w : g.neighbors(v)) {
      if (cores.position[w] > cores.position[v]) {
        p.push_back(w);
      } else {
        x.push_back(w);
      }
    }
    std::sort(p.begin(), p.end());
    std::sort(x.begin(), x.end());
    state.r.push_back(v);
    state.Recurse(p, x);
    state.r.pop_back();
  }
  return state.found;
}

CliqueResult MaxFairCliqueByEnumeration(const AttributedGraph& g,
                                        const FairnessParams& params) {
  CliqueResult best;
  EnumerateMaximalCliques(g, [&](const std::vector<VertexId>& m) {
    AttrCounts cnt;
    for (VertexId v : m) cnt[g.attribute(v)]++;
    int64_t size = params.BestFairSubsetSize(cnt);
    if (size <= static_cast<int64_t>(best.size())) return;
    // Recover a witness: minority count p, majority count size - p, with
    // p as large as allowed subject to p <= cnt[minor], size - p <=
    // cnt[major] and (size - p) - p <= delta.
    Attribute minor = cnt.a() <= cnt.b() ? Attribute::kA : Attribute::kB;
    int64_t p = std::max<int64_t>((size - params.delta + 1) / 2,
                                  size - cnt[Other(minor)]);
    p = std::min<int64_t>(p, cnt[minor]);
    CliqueResult candidate;
    int64_t took_minor = 0, took_major = 0;
    for (VertexId v : m) {
      if (g.attribute(v) == minor) {
        if (took_minor < p) {
          candidate.vertices.push_back(v);
          ++took_minor;
        }
      } else {
        if (took_major < size - p) {
          candidate.vertices.push_back(v);
          ++took_major;
        }
      }
    }
    candidate.attr_counts[minor] = took_minor;
    candidate.attr_counts[Other(minor)] = took_major;
    FC_CHECK(static_cast<int64_t>(candidate.vertices.size()) == size)
        << "witness recovery failed";
    FC_CHECK(params.Satisfied(candidate.attr_counts))
        << "witness violates fairness";
    best = std::move(candidate);
  });
  return best;
}

}  // namespace fairclique
