#include "core/options_key.h"

#include <cstdio>

namespace fairclique {

std::string CanonicalOptionsKey(const SearchOptions& options) {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "k=%d|d=%d|ord=%d|red=%d%d%d|adv=%d|xb=%d|heur=%d|bdep=%d|nl=%llu|"
      "tl=%.17g",
      options.params.k, options.params.delta,
      static_cast<int>(options.order),
      options.reductions.use_en_colorful_core ? 1 : 0,
      options.reductions.use_colorful_sup ? 1 : 0,
      options.reductions.use_en_colorful_sup ? 1 : 0,
      options.bounds.use_advanced ? 1 : 0,
      static_cast<int>(options.bounds.extra), options.use_heuristic ? 1 : 0,
      options.bound_depth,
      static_cast<unsigned long long>(options.node_limit),
      options.time_limit_seconds);
  return std::string(buf);
}

}  // namespace fairclique
