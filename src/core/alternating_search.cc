#include "core/alternating_search.h"

#include <algorithm>

#include "graph/coloring.h"
#include "reduction/colorful_core.h"

namespace fairclique {

namespace {

// Mirrors Algorithm 3's state machine. Vertex sets are plain id vectors;
// attribute partitions are recomputed per call as in the pseudo-code
// (lines 2-3).
class AlternatingBranch {
 public:
  AlternatingBranch(const AttributedGraph& g, const FairnessParams& params,
                    const std::vector<uint32_t>& position, uint64_t node_limit)
      : g_(g), params_(params), position_(position), node_limit_(node_limit) {}

  AlternatingSearchResult Run() {
    // Algorithm 2 line 11: Branch(∅, component, O, a, -1). We run on the
    // whole graph; disconnected parts simply never mix in one clique.
    std::vector<VertexId> all(g_.num_vertices());
    for (VertexId v = 0; v < g_.num_vertices(); ++v) all[v] = v;
    std::vector<VertexId> r;
    Branch(r, all, Attribute::kA, -1);
    AlternatingSearchResult out;
    out.clique = best_;
    out.nodes = nodes_;
    out.completed = !aborted_;
    return out;
  }

 private:
  void Branch(std::vector<VertexId>& r, std::vector<VertexId> c,
              Attribute attr_choose, int64_t amax) {
    if (aborted_) return;
    ++nodes_;
    if (node_limit_ != 0 && nodes_ > node_limit_) {
      aborted_ = true;
      return;
    }
    // Lines 2-3: partition candidates and R by attribute.
    AttrCounts r_cnt;
    for (VertexId v : r) r_cnt[g_.attribute(v)]++;
    AttrCounts c_cnt;
    for (VertexId v : c) c_cnt[g_.attribute(v)]++;
    // Lines 4-6: engage the cap when the chosen side is exhausted.
    if (c_cnt[attr_choose] == 0 && amax == -1) {
      amax = r_cnt[attr_choose] + params_.delta;
    }
    // Lines 7-8: a side that reached the cap takes no more candidates.
    if (amax != -1) {
      bool drop[2] = {r_cnt[Attribute::kA] >= amax,
                      r_cnt[Attribute::kB] >= amax};
      if (drop[0] || drop[1]) {
        std::erase_if(c, [&](VertexId v) {
          return drop[AttrIndex(g_.attribute(v))];
        });
        c_cnt[Attribute::kA] = 0;
        c_cnt[Attribute::kB] = 0;
        for (VertexId v : c) c_cnt[g_.attribute(v)]++;
      }
    }
    // Lines 9-11 with the fairness correction: record only genuine fair
    // cliques (the printed pseudo-code compares sizes unconditionally).
    if (c.empty()) {
      if (r.size() > best_.size() && params_.Satisfied(r_cnt)) {
        best_.vertices = r;
        best_.attr_counts = r_cnt;
      }
      return;
    }
    // Lines 12-13: flip when the chosen attribute has no candidates.
    if (c_cnt[attr_choose] == 0) {
      Branch(r, std::move(c), Other(attr_choose), amax);
      return;
    }
    // Lines 14-24: extend by each candidate of the chosen attribute.
    for (VertexId u : c) {
      if (g_.attribute(u) != attr_choose) continue;
      if (aborted_) return;
      std::vector<VertexId> next;
      AttrCounts next_cnt;
      for (VertexId v : c) {
        // Line 17: neighbor with strictly higher order only.
        if (v != u && position_[v] > position_[u] && g_.HasEdge(u, v)) {
          next.push_back(v);
          next_cnt[g_.attribute(v)]++;
        }
      }
      // Line 19: incumbent size prune.
      if (next.size() + r.size() + 1 < best_.size()) continue;
      // Line 20: minimum fair clique size.
      if (next.size() + r.size() + 1 < 2 * static_cast<size_t>(params_.k)) {
        continue;
      }
      // Lines 21-23: attribute feasibility.
      AttrCounts rhat_cnt = r_cnt;
      rhat_cnt[g_.attribute(u)]++;
      if (rhat_cnt.a() + next_cnt.a() < params_.k ||
          rhat_cnt.b() + next_cnt.b() < params_.k) {
        continue;
      }
      r.push_back(u);
      Branch(r, std::move(next), Other(attr_choose), amax);
      r.pop_back();
    }
  }

  const AttributedGraph& g_;
  const FairnessParams params_;
  const std::vector<uint32_t>& position_;
  const uint64_t node_limit_;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
  CliqueResult best_;
};

}  // namespace

AlternatingSearchResult AlternatingMaxFairClique(
    const AttributedGraph& g, const FairnessParams& params,
    const std::vector<uint32_t>& position, uint64_t node_limit) {
  AlternatingBranch branch(g, params, position, node_limit);
  AlternatingSearchResult result = branch.Run();
  std::sort(result.clique.vertices.begin(), result.clique.vertices.end());
  return result;
}

AlternatingSearchResult AlternatingMaxFairClique(const AttributedGraph& g,
                                                 const FairnessParams& params,
                                                 uint64_t node_limit) {
  Coloring coloring = GreedyColoring(g);
  ColorfulCoreDecomposition dec = ComputeColorfulCores(g, coloring);
  return AlternatingMaxFairClique(g, params, dec.position, node_limit);
}

}  // namespace fairclique
