#include "core/max_fair_clique.h"

#include "common/logging.h"
#include "common/timer.h"
#include "core/prepared_graph.h"

namespace fairclique {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "";
    case StopReason::kNodeLimit: return "node_limit";
    case StopReason::kTimeLimit: return "time_limit";
  }
  return "";
}

// The monolithic entry point is a thin wrapper over the staged query plan
// (core/prepared_graph.h): Reduce + Decompose produce a PreparedGraph, the
// Branch stage searches it. Callers that re-ask with different delta/bound
// options should PrepareGraph once and call SearchPreparedGraph per query
// (or go through the service layer's PreparedGraphCache).
SearchResult FindMaximumFairClique(const AttributedGraph& g,
                                   const SearchOptions& options) {
  FC_CHECK(options.params.k >= 1) << "fairness parameter k must be >= 1";
  FC_CHECK(options.params.delta >= 0) << "delta must be >= 0";
  WallTimer total_timer;

  WallTimer reduce_timer;
  std::shared_ptr<const PreparedGraph> prepared =
      PrepareGraph(g, options.params.k, options.reductions);
  int64_t reduce_micros = reduce_timer.ElapsedMicros();

  // The monolith's time limit covered reduction + branch; deduct the time
  // already spent preparing so the Branch stage cannot overrun the valve.
  SearchOptions branch_options = options;
  branch_options.time_limit_seconds = RemainingTimeBudget(
      options.time_limit_seconds, total_timer.ElapsedSeconds());
  SearchResult result = SearchPreparedGraph(g, *prepared, branch_options);
  result.stats.reduce_micros = reduce_micros;
  result.stats.total_micros = total_timer.ElapsedMicros();
  return result;
}

SearchOptions BaselineOptions(int k, int delta) {
  SearchOptions options;
  options.params = {k, delta};
  options.bounds = {.use_advanced = false, .extra = ExtraBound::kNone};
  options.use_heuristic = false;
  return options;
}

SearchOptions BoundedOptions(int k, int delta, ExtraBound extra) {
  SearchOptions options = BaselineOptions(k, delta);
  options.bounds = {.use_advanced = true, .extra = extra};
  return options;
}

SearchOptions FullOptions(int k, int delta, ExtraBound extra) {
  SearchOptions options = BoundedOptions(k, delta, extra);
  options.use_heuristic = true;
  return options;
}

}  // namespace fairclique
