#ifndef FAIRCLIQUE_CORE_FAIRCLIQUE_H_
#define FAIRCLIQUE_CORE_FAIRCLIQUE_H_

/// Umbrella header: the full public API of the fairclique library.
///
/// Quickstart:
///
///   #include "core/fairclique.h"
///   using namespace fairclique;
///
///   AttributedGraph g = ...;                       // build or load a graph
///   SearchResult r = FindMaximumFairClique(
///       g, FullOptions(/*k=*/3, /*delta=*/1, ExtraBound::kColorfulPath));
///   // r.clique.vertices is a maximum relative fair clique.

#include "bounds/upper_bounds.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/alternating_search.h"
#include "core/enumeration.h"
#include "core/fair_variants.h"
#include "core/heuristics.h"
#include "core/max_clique.h"
#include "core/max_fair_clique.h"
#include "core/options_key.h"
#include "core/prepared_graph.h"
#include "core/verifier.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_search.h"
#include "graph/binary_io.h"
#include "graph/coloring.h"
#include "graph/cores.h"
#include "graph/fingerprint.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "graph/triangles.h"
#include "graph/types.h"
#include "reduction/colorful_core.h"
#include "reduction/colorful_support.h"
#include "reduction/reduce.h"
#include "reduction/support_decomposition.h"
#include "service/graph_registry.h"
#include "service/prepared_graph_cache.h"
#include "service/query_executor.h"
#include "service/result_cache.h"
#include "service/wire.h"
#include "storage/fcg2.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "storage/warm_file.h"

#endif  // FAIRCLIQUE_CORE_FAIRCLIQUE_H_
