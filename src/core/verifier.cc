#include "core/verifier.h"

#include <algorithm>
#include <string>
#include <vector>

namespace fairclique {

bool IsClique(const AttributedGraph& g, std::span<const VertexId> vertices) {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!g.HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

AttrCounts CountAttributes(const AttributedGraph& g,
                           std::span<const VertexId> vertices) {
  AttrCounts cnt;
  for (VertexId v : vertices) cnt[g.attribute(v)]++;
  return cnt;
}

bool IsFairClique(const AttributedGraph& g,
                  std::span<const VertexId> vertices,
                  const FairnessParams& params) {
  return params.Satisfied(CountAttributes(g, vertices)) &&
         IsClique(g, vertices);
}

Status VerifyFairClique(const AttributedGraph& g,
                        std::span<const VertexId> vertices,
                        const FairnessParams& params) {
  std::vector<VertexId> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= g.num_vertices()) {
      return Status::OutOfRange("vertex " + std::to_string(sorted[i]) +
                                " out of range");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate vertex " +
                                     std::to_string(sorted[i]));
    }
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = i + 1; j < sorted.size(); ++j) {
      if (!g.HasEdge(sorted[i], sorted[j])) {
        return Status::InvalidArgument(
            "not a clique: missing edge (" + std::to_string(sorted[i]) + ", " +
            std::to_string(sorted[j]) + ")");
      }
    }
  }
  AttrCounts cnt = CountAttributes(g, vertices);
  if (cnt.a() < params.k || cnt.b() < params.k) {
    return Status::InvalidArgument(
        "fairness violated: attribute counts (" + std::to_string(cnt.a()) +
        ", " + std::to_string(cnt.b()) + ") below k=" +
        std::to_string(params.k));
  }
  if (cnt.Diff() > params.delta) {
    return Status::InvalidArgument(
        "fairness violated: |" + std::to_string(cnt.a()) + " - " +
        std::to_string(cnt.b()) + "| > delta=" + std::to_string(params.delta));
  }
  return Status::OK();
}

}  // namespace fairclique
