#include "core/fair_variants.h"

#include <algorithm>

#include "core/enumeration.h"
#include "core/verifier.h"

namespace fairclique {

SearchResult FindMaximumWeakFairClique(const AttributedGraph& g, int k,
                                       ExtraBound extra) {
  // Weak fairness is the relative model with the balance constraint
  // disabled; any delta >= n is unbounded in effect.
  SearchOptions options =
      FullOptions(k, static_cast<int>(g.num_vertices()) + 1, extra);
  return FindMaximumFairClique(g, options);
}

SearchResult FindMaximumStrongFairClique(const AttributedGraph& g, int k,
                                         ExtraBound extra) {
  // Strong fairness = exact balance = delta 0.
  SearchOptions options = FullOptions(k, 0, extra);
  return FindMaximumFairClique(g, options);
}

uint64_t EnumerateWeakFairCliques(
    const AttributedGraph& g, int k,
    const std::function<void(const std::vector<VertexId>&)>& callback,
    uint64_t max_results) {
  // Weak fairness (cnt >= k on both sides) is upward-closed within cliques,
  // so maximal weak fair cliques are exactly the maximal cliques passing the
  // count filter.
  uint64_t found = 0;
  bool done = false;
  EnumerateMaximalCliques(g, [&](const std::vector<VertexId>& m) {
    if (done) return;
    AttrCounts cnt;
    for (VertexId v : m) cnt[g.attribute(v)]++;
    if (cnt.a() >= k && cnt.b() >= k) {
      callback(m);
      ++found;
      if (max_results != 0 && found >= max_results) done = true;
    }
  });
  return found;
}

namespace {

// True when some non-empty clique S inside `ext` (the common neighborhood of
// the fair clique R) brings the attribute difference d = cnt_a - cnt_b of
// R ∪ S into [-delta, delta]. DFS with an interval-reachability prune.
// `diff` is cnt_R(a) - cnt_R(b).
bool CanExtendFairly(const AttributedGraph& g,
                     const std::vector<VertexId>& ext, size_t from,
                     int64_t diff, int64_t delta, bool extended) {
  if (extended && diff >= -delta && diff <= delta) return true;
  // Remaining per-attribute capacity from ext[from..].
  int64_t rem_a = 0, rem_b = 0;
  for (size_t i = from; i < ext.size(); ++i) {
    (g.attribute(ext[i]) == Attribute::kA ? rem_a : rem_b)++;
  }
  // Reachable difference interval is [diff - rem_b, diff + rem_a]; if it
  // misses [-delta, delta] entirely no extension can restore balance. (The
  // already-fair case returned true above.)
  (void)extended;
  if (diff - rem_b > delta || diff + rem_a < -delta) return false;
  for (size_t i = from; i < ext.size(); ++i) {
    VertexId w = ext[i];
    // Shrink ext to w's neighbors beyond i.
    std::vector<VertexId> next;
    for (size_t j = i + 1; j < ext.size(); ++j) {
      if (g.HasEdge(w, ext[j])) next.push_back(ext[j]);
    }
    int64_t d2 = diff + (g.attribute(w) == Attribute::kA ? 1 : -1);
    if (CanExtendFairly(g, next, 0, d2, delta, /*extended=*/true)) return true;
  }
  return false;
}

// Ordered enumeration of all cliques with fairness-feasibility pruning.
struct RfcEnumState {
  const AttributedGraph& g;
  FairnessParams params;
  const std::function<void(const std::vector<VertexId>&)>& callback;
  uint64_t max_results;
  uint64_t found = 0;
  bool done = false;
  std::vector<VertexId> r;
  AttrCounts r_cnt;

  void Recurse(const std::vector<VertexId>& cand) {
    if (done) return;
    if (params.Satisfied(r_cnt)) {
      // Maximal among fair cliques iff no clique inside the common
      // neighborhood re-balances a strict superset. The common neighborhood
      // of R is exactly the candidate closure over *all* vertices, not only
      // the ordered suffix, so recompute it.
      std::vector<VertexId> ext;
      for (VertexId w = 0; w < g.num_vertices(); ++w) {
        bool all = true;
        for (VertexId v : r) {
          if (v == w || !g.HasEdge(v, w)) {
            all = false;
            break;
          }
        }
        if (all) ext.push_back(w);
      }
      if (!CanExtendFairly(g, ext, 0, r_cnt.a() - r_cnt.b(), params.delta,
                           /*extended=*/false)) {
        callback(r);
        if (++found >= max_results && max_results != 0) done = true;
      }
    }
    // Feasibility prune: both attributes must still be able to reach k.
    AttrCounts avail = r_cnt;
    for (VertexId w : cand) avail[g.attribute(w)]++;
    if (avail.a() < params.k || avail.b() < params.k) return;
    for (size_t i = 0; i < cand.size() && !done; ++i) {
      VertexId u = cand[i];
      std::vector<VertexId> next;
      for (size_t j = i + 1; j < cand.size(); ++j) {
        if (g.HasEdge(u, cand[j])) next.push_back(cand[j]);
      }
      r.push_back(u);
      r_cnt[g.attribute(u)]++;
      Recurse(next);
      r.pop_back();
      r_cnt[g.attribute(u)]--;
    }
  }
};

}  // namespace

uint64_t EnumerateRelativeFairCliques(
    const AttributedGraph& g, const FairnessParams& params,
    const std::function<void(const std::vector<VertexId>&)>& callback,
    uint64_t max_results) {
  RfcEnumState state{g, params, callback, max_results, 0, false, {}, {}};
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  state.Recurse(all);
  return state.found;
}

}  // namespace fairclique
