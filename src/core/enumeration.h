#ifndef FAIRCLIQUE_CORE_ENUMERATION_H_
#define FAIRCLIQUE_CORE_ENUMERATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Bron-Kerbosch maximal clique enumeration with pivoting (Tomita-style
/// pivot: the vertex of P ∪ X with the most neighbors in P). Invokes
/// `callback` once per maximal clique. Intended as an *independent
/// correctness oracle* for the fair-clique search (different algorithm,
/// different code path) and as the naive baseline the paper's introduction
/// describes; exponential in the worst case.
///
/// Returns the number of maximal cliques. `max_cliques` (0 = unlimited)
/// aborts the enumeration early when exceeded, returning what was seen.
uint64_t EnumerateMaximalCliques(
    const AttributedGraph& g,
    const std::function<void(const std::vector<VertexId>&)>& callback,
    uint64_t max_cliques = 0);

/// Exact maximum relative fair clique by exhaustive reasoning over maximal
/// cliques: every clique is a subset of some maximal clique, and any subset
/// of a clique is a clique, so the optimum equals
///   max over maximal cliques M of BestFairSubsetSize(cnt_M)
/// and a witness is recovered by dropping surplus majority vertices from the
/// best M. Exponential; use on small/medium graphs (tests, Fig. 8 ground
/// truth on stand-ins).
CliqueResult MaxFairCliqueByEnumeration(const AttributedGraph& g,
                                        const FairnessParams& params);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_ENUMERATION_H_
