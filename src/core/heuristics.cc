#include "core/heuristics.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/verifier.h"
#include "graph/coloring.h"
#include "graph/cores.h"

namespace fairclique {

namespace {

// One greedy pass of HeurBranch (Algorithm 5 lines 6-28) from `start`.
// `score[v]` is the selection key (degree for DegHeur, colorful Dmin for
// ColorfulDegHeur). Returns the grown clique; the caller checks fairness.
CliqueResult GreedyGrow(const AttributedGraph& g,
                        const std::vector<int64_t>& score, VertexId start,
                        const FairnessParams& params) {
  CliqueResult result;
  result.vertices.push_back(start);
  result.attr_counts[g.attribute(start)]++;

  std::vector<VertexId> candidates(g.neighbors(start).begin(),
                                   g.neighbors(start).end());
  // Alternate away from the start vertex's attribute (Alg. 5 line 3).
  Attribute attr_choose = Other(g.attribute(start));
  int64_t amax = -1;  // Cap on either side's count once one side exhausts.

  while (!candidates.empty()) {
    // Set the cap the first time the side to pick from is exhausted
    // (Alg. 5 lines 9-11).
    AttrCounts cand_cnt;
    for (VertexId v : candidates) cand_cnt[g.attribute(v)]++;
    if (amax == -1 && cand_cnt[attr_choose] == 0) {
      amax = result.attr_counts[attr_choose] + params.delta;
    }
    // Enforce the cap (lines 12-13): a side at amax takes no more vertices.
    if (amax != -1) {
      bool drop[2] = {result.attr_counts[Attribute::kA] >= amax,
                      result.attr_counts[Attribute::kB] >= amax};
      if (drop[0] || drop[1]) {
        std::erase_if(candidates, [&](VertexId v) {
          return drop[AttrIndex(g.attribute(v))];
        });
        if (candidates.empty()) break;
        cand_cnt = AttrCounts{};
        for (VertexId v : candidates) cand_cnt[g.attribute(v)]++;
      }
    }
    // If the chosen side is empty, flip (lines 16-19).
    if (cand_cnt[attr_choose] == 0) {
      attr_choose = Other(attr_choose);
      if (cand_cnt[attr_choose] == 0) break;
    }
    // Pick the best-scoring candidate of the chosen attribute (line 20).
    VertexId best = kInvalidVertex;
    for (VertexId v : candidates) {
      if (g.attribute(v) != attr_choose) continue;
      if (best == kInvalidVertex || score[v] > score[best] ||
          (score[v] == score[best] && v < best)) {
        best = v;
      }
    }
    result.vertices.push_back(best);
    result.attr_counts[g.attribute(best)]++;
    attr_choose = Other(g.attribute(best));
    // Candidates shrink to the neighbors of the new member (line 23).
    auto nbrs = g.neighbors(best);
    std::vector<VertexId> next;
    next.reserve(candidates.size());
    std::sort(candidates.begin(), candidates.end());
    std::set_intersection(candidates.begin(), candidates.end(), nbrs.begin(),
                          nbrs.end(), std::back_inserter(next));
    candidates = std::move(next);
  }
  return result;
}

// Shared driver: rank all vertices by score, try the top `num_starts` start
// vertices, keep the largest grown clique that satisfies fairness.
CliqueResult RunGreedy(const AttributedGraph& g,
                       const std::vector<int64_t>& score,
                       const HeuristicOptions& options) {
  const VertexId n = g.num_vertices();
  CliqueResult best;
  if (n == 0) return best;
  std::vector<VertexId> starts(n);
  std::iota(starts.begin(), starts.end(), 0);
  int num_starts = std::max(1, options.num_starts);
  if (static_cast<VertexId>(num_starts) < n) {
    std::partial_sort(starts.begin(), starts.begin() + num_starts,
                      starts.end(), [&](VertexId a, VertexId b) {
                        return score[a] != score[b] ? score[a] > score[b]
                                                    : a < b;
                      });
    starts.resize(num_starts);
  }
  for (VertexId s : starts) {
    CliqueResult r = GreedyGrow(g, score, s, options.params);
    if (options.params.Satisfied(r.attr_counts) && r.size() > best.size()) {
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace

CliqueResult DegHeur(const AttributedGraph& g,
                     const HeuristicOptions& options) {
  std::vector<int64_t> score(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) score[v] = g.degree(v);
  return RunGreedy(g, score, options);
}

CliqueResult ColorfulDegHeur(const AttributedGraph& g,
                             const HeuristicOptions& options) {
  Coloring coloring = GreedyColoring(g);
  std::vector<AttrCounts> d = ColorfulDegrees(g, coloring);
  std::vector<int64_t> score(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) score[v] = d[v].Min();
  return RunGreedy(g, score, options);
}

CliqueResult LocalSearchImprove(const AttributedGraph& g, CliqueResult seed,
                                const FairnessParams& params) {
  if (seed.empty() || !params.Satisfied(seed.attr_counts)) return seed;
  // in_clique flags for O(1) membership tests.
  std::vector<uint8_t> in_clique(g.num_vertices(), 0);
  for (VertexId v : seed.vertices) in_clique[v] = 1;

  auto common_neighbors = [&](const std::vector<VertexId>& clique) {
    // Vertices adjacent to every member (and not members themselves),
    // found by intersecting from the lowest-degree member.
    std::vector<VertexId> result;
    if (clique.empty()) return result;
    VertexId pivot = clique[0];
    for (VertexId v : clique) {
      if (g.degree(v) < g.degree(pivot)) pivot = v;
    }
    for (VertexId w : g.neighbors(pivot)) {
      if (in_clique[w]) continue;
      bool all = true;
      for (VertexId v : clique) {
        if (v != pivot && !g.HasEdge(v, w)) {
          all = false;
          break;
        }
      }
      if (all) result.push_back(w);
    }
    return result;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    // ADD: any common neighbor keeping fairness.
    std::vector<VertexId> ext = common_neighbors(seed.vertices);
    for (VertexId w : ext) {
      AttrCounts next = seed.attr_counts;
      next[g.attribute(w)]++;
      if (params.Satisfied(next)) {
        seed.vertices.push_back(w);
        seed.attr_counts = next;
        in_clique[w] = 1;
        improved = true;
        break;
      }
    }
    if (improved) continue;
    // SWAP: drop one member, add two mutually-adjacent outsiders.
    for (size_t drop = 0; drop < seed.vertices.size() && !improved; ++drop) {
      VertexId out = seed.vertices[drop];
      std::vector<VertexId> rest = seed.vertices;
      rest.erase(rest.begin() + static_cast<ptrdiff_t>(drop));
      in_clique[out] = 0;
      std::vector<VertexId> ext2 = common_neighbors(rest);
      AttrCounts rest_cnt = seed.attr_counts;
      rest_cnt[g.attribute(out)]--;
      for (size_t i = 0; i < ext2.size() && !improved; ++i) {
        for (size_t j = i + 1; j < ext2.size(); ++j) {
          if (!g.HasEdge(ext2[i], ext2[j])) continue;
          AttrCounts next = rest_cnt;
          next[g.attribute(ext2[i])]++;
          next[g.attribute(ext2[j])]++;
          if (!params.Satisfied(next)) continue;
          rest.push_back(ext2[i]);
          rest.push_back(ext2[j]);
          seed.vertices = rest;
          seed.attr_counts = next;
          in_clique[ext2[i]] = 1;
          in_clique[ext2[j]] = 1;
          improved = true;
          break;
        }
      }
      if (!improved) in_clique[out] = 1;  // Undo the tentative drop.
    }
  }
  std::sort(seed.vertices.begin(), seed.vertices.end());
  return seed;
}

HeuristicResult HeurRFC(const AttributedGraph& g,
                        const HeuristicOptions& options) {
  HeuristicResult result;
  // Stage 1: degree-based pass on the full graph (Alg. 6 line 1).
  CliqueResult deg = DegHeur(g, options);
  result.clique = deg;

  // Stage 2: shrink to the (|R*|-1)-core — any larger fair clique survives —
  // and run the colorful-degree pass there (lines 2-4). Track vertex ids
  // through the shrink.
  AttributedGraph current = g;
  std::vector<VertexId> ids(g.num_vertices());
  std::iota(ids.begin(), ids.end(), 0);
  auto shrink_to_core = [&](uint32_t k_star) {
    std::vector<uint8_t> alive = KCoreAliveFlags(current, k_star);
    std::vector<VertexId> inner;
    AttributedGraph next = current.FilteredSubgraph(alive, {}, &inner);
    std::vector<VertexId> composed(inner.size());
    for (size_t i = 0; i < inner.size(); ++i) composed[i] = ids[inner[i]];
    ids = std::move(composed);
    current = std::move(next);
  };
  if (!deg.empty()) {
    shrink_to_core(static_cast<uint32_t>(deg.size()) - 1);
  }
  CliqueResult colorful = ColorfulDegHeur(current, options);
  if (colorful.size() > result.clique.size()) {
    // Map back to original ids.
    for (VertexId& v : colorful.vertices) v = ids[v];
    result.clique = colorful;
    shrink_to_core(static_cast<uint32_t>(result.clique.size()) - 1);
  }
  // Optional post-optimization with fairness-preserving add/swap moves.
  if (options.local_search && !result.clique.empty()) {
    result.clique = LocalSearchImprove(g, std::move(result.clique),
                                       options.params);
  }
  // Color the surviving graph; its color count bounds any fair clique it
  // still contains (lines 9-10).
  result.color_upper_bound = GreedyColoring(current).num_colors;
  return result;
}

}  // namespace fairclique
