#ifndef FAIRCLIQUE_CORE_ALTERNATING_SEARCH_H_
#define FAIRCLIQUE_CORE_ALTERNATING_SEARCH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// A faithful implementation of the paper's Branch procedure (Algorithm 3)
/// *exactly as printed*: strict attribute alternation, one global
/// `O(v) > O(u)` order filter, and the amax cap engaged the first time the
/// chosen attribute's candidate set empties.
///
/// As DESIGN.md §2.2 analyzes (and
/// tests/alternating_search_test.cpp demonstrates with a concrete
/// counterexample), this pseudo-code is *incomplete*: cliques whose
/// attribute pattern cannot be realized as an alternating, order-increasing
/// pick sequence are never generated, so the returned clique can be smaller
/// than the true maximum. The exact engine in max_fair_clique.h fixes this;
/// this module exists (i) to document the gap executably, and (ii) as a
/// fast alternating-greedy *search heuristic* — it explores far fewer nodes
/// than the complete search and its result is always a genuine fair clique.
struct AlternatingSearchResult {
  CliqueResult clique;   // A fair clique (possibly sub-optimal); may be empty.
  uint64_t nodes = 0;
  bool completed = true;
};

/// Runs Algorithm 3 on the whole graph with the given vertex ordering
/// (position[v] = rank of v; the paper uses the colorful-core peeling order,
/// which callers obtain from ComputeColorfulCores). One difference from the
/// printed pseudo-code: a candidate answer is verified against fairness
/// before it replaces the incumbent (the printed line 10-11 updates
/// unconditionally, which can return non-fair cliques when k is not met).
AlternatingSearchResult AlternatingMaxFairClique(
    const AttributedGraph& g, const FairnessParams& params,
    const std::vector<uint32_t>& position, uint64_t node_limit = 0);

/// Convenience overload: computes the CalColorOD ordering internally.
AlternatingSearchResult AlternatingMaxFairClique(const AttributedGraph& g,
                                                 const FairnessParams& params,
                                                 uint64_t node_limit = 0);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_ALTERNATING_SEARCH_H_
