#include "core/prepared_graph.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <numeric>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/bitset.h"
#include "common/logging.h"
#include "core/heuristics.h"
#include "core/verifier.h"
#include "graph/coloring.h"
#include "graph/cores.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "reduction/colorful_core.h"

namespace fairclique {

namespace {

// Lock-free monotone max on the shared incumbent-size floor.
void RaiseFloor(std::atomic<int64_t>* floor, int64_t value) {
  int64_t cur = floor->load(std::memory_order_relaxed);
  while (cur < value &&
         !floor->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Rank positions for the configured branch ordering.
std::vector<uint32_t> ComputeBranchPositions(const AttributedGraph& comp,
                                             BranchOrder order) {
  switch (order) {
    case BranchOrder::kColorfulCore: {
      Coloring coloring = GreedyColoring(comp);
      return ComputeColorfulCores(comp, coloring).position;
    }
    case BranchOrder::kDegeneracy:
      return ComputeCores(comp).position;
    case BranchOrder::kDegree: {
      // Stable ascending-degree ranks.
      std::vector<VertexId> verts(comp.num_vertices());
      std::iota(verts.begin(), verts.end(), 0);
      std::stable_sort(verts.begin(), verts.end(),
                       [&comp](VertexId a, VertexId b) {
                         return comp.degree(a) < comp.degree(b);
                       });
      std::vector<uint32_t> position(comp.num_vertices());
      for (uint32_t i = 0; i < verts.size(); ++i) position[verts[i]] = i;
      return position;
    }
  }
  return {};
}

// Branch-and-bound over one connected component, with vertices relabeled to
// their colorful-core peeling rank (CalColorOD order): candidate sets only
// ever contain ranks greater than the last added vertex, so every clique of
// the component is enumerated exactly once, from its lowest-ranked vertex.
class ComponentSearch {
 public:
  ComponentSearch(const AttributedGraph& comp,
                  const std::vector<uint32_t>& rank_of,
                  const SearchOptions& options, const Deadline& deadline,
                  SearchStats* stats, CliqueResult* best,
                  std::atomic<int64_t>* floor)
      : g_(comp),
        options_(options),
        deadline_(deadline),
        stats_(stats),
        best_(best),
        floor_(floor),
        rank_of_(rank_of) {
    vertex_at_.resize(g_.num_vertices());
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      vertex_at_[rank_of_[v]] = v;
    }
    // Rank-space sorted adjacency for O(|C| + deg) candidate filtering.
    adj_.resize(g_.num_vertices());
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      auto& row = adj_[rank_of_[v]];
      row.reserve(g_.degree(v));
      for (VertexId w : g_.neighbors(v)) row.push_back(rank_of_[w]);
      std::sort(row.begin(), row.end());
    }
  }

  // Runs the search; `to_original(rank)` maps a rank-space vertex to an
  // original-graph id for incumbent reporting.
  template <typename MapFn>
  void Run(MapFn&& to_original) {
    map_ = [&](uint32_t r) { return to_original(vertex_at_[r]); };
    std::vector<uint32_t> all(g_.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    AttrCounts cnt;
    for (uint32_t r = 0; r < g_.num_vertices(); ++r) {
      cnt[g_.attribute(vertex_at_[r])]++;
    }
    r_.clear();
    r_cnt_ = AttrCounts{};
    Branch(all, cnt, 0);
  }

  bool aborted() const { return aborted_; }

 private:
  // Minimum size the incumbent forces us to beat: a new clique must have
  // size >= max(2k, |best|+1).
  // Known incumbent size: the larger of this component's best and the
  // cross-component floor (shared by parallel workers).
  int64_t Known() const {
    int64_t local = static_cast<int64_t>(best_->size());
    if (floor_ != nullptr) {
      local = std::max(local, floor_->load(std::memory_order_relaxed));
    }
    return local;
  }

  int64_t Target() const {
    return std::max<int64_t>(2 * options_.params.k, Known() + 1);
  }

  void Branch(const std::vector<uint32_t>& candidates, AttrCounts cand_cnt,
              int depth) {
    if (aborted_) return;
    stats_->nodes++;
    if (options_.node_limit != 0 && stats_->nodes > options_.node_limit) {
      stats_->stop_reason = StopReason::kNodeLimit;
      aborted_ = true;
      return;
    }
    if ((stats_->nodes & 0x3ff) == 0) {
      // The deadline-check cadence doubles as the live-progress cadence:
      // one predictable branch per kilonode either way.
      if (options_.branch_tick != nullptr) (*options_.branch_tick)();
      if (options_.progress != nullptr) options_.progress->AddNodes(1024);
      if (deadline_.Expired()) {
        stats_->stop_reason = StopReason::kTimeLimit;
        aborted_ = true;
        return;
      }
    }
    // Every node's R is a clique reached exactly once; record it when fair.
    if (static_cast<int64_t>(r_.size()) > Known() &&
        options_.params.Satisfied(r_cnt_)) {
      best_->vertices.clear();
      for (uint32_t r : r_) best_->vertices.push_back(map_(r));
      best_->attr_counts = r_cnt_;
      if (floor_ != nullptr) {
        RaiseFloor(floor_, static_cast<int64_t>(r_.size()));
      }
      if (options_.progress != nullptr) {
        options_.progress->NoteIncumbent(static_cast<int64_t>(r_.size()));
      }
    }
    if (candidates.empty()) return;

    // Size prune (Lemma 5 / Alg. 3 line 19).
    if (static_cast<int64_t>(r_.size() + candidates.size()) < Target()) {
      stats_->size_prunes++;
      return;
    }
    // Attribute feasibility (Alg. 3 lines 20-23): both attributes must be
    // able to reach k.
    if (r_cnt_.a() + cand_cnt.a() < options_.params.k ||
        r_cnt_.b() + cand_cnt.b() < options_.params.k) {
      stats_->attr_prunes++;
      return;
    }
    // Delta cap (sound form of Alg. 3 lines 4-8): when attribute x already
    // matches the best the other side can reach plus delta, no x-vertex can
    // be added to any fair completion.
    const std::vector<uint32_t>* cand = &candidates;
    std::vector<uint32_t> capped;
    for (Attribute x : {Attribute::kA, Attribute::kB}) {
      Attribute y = Other(x);
      if (cand_cnt[x] > 0 &&
          r_cnt_[x] >= r_cnt_[y] + cand_cnt[y] + options_.params.delta) {
        capped.clear();
        capped.reserve(cand->size());
        for (uint32_t r : *cand) {
          if (g_.attribute(vertex_at_[r]) != x) capped.push_back(r);
        }
        stats_->cap_removals += cand->size() - capped.size();
        cand_cnt[x] = 0;
        cand = &capped;
        // Re-check the size prune after dropping candidates.
        if (static_cast<int64_t>(r_.size() + cand->size()) < Target()) {
          stats_->size_prunes++;
          return;
        }
      }
    }

    // Configured upper bounds on the induced subgraph of R ∪ C, at shallow
    // depths only (building the subgraph is O(E(G')) per node).
    if (depth < options_.bound_depth &&
        (options_.bounds.use_advanced ||
         options_.bounds.extra != ExtraBound::kNone)) {
      if (UpperBoundOf(*cand) < Target()) {
        stats_->bound_prunes++;
        return;
      }
    }

    // Expand each candidate in rank order; the suffix filter keeps every
    // clique enumerated exactly once.
    for (size_t i = 0; i < cand->size(); ++i) {
      if (aborted_) return;
      uint32_t u = (*cand)[i];
      // Remaining-size prune for this child before building its set.
      if (static_cast<int64_t>(r_.size() + 1 + (cand->size() - i - 1)) <
          Target()) {
        stats_->size_prunes++;
        break;  // Later children only get smaller.
      }
      std::vector<uint32_t> next;
      AttrCounts next_cnt;
      // next = {v in cand[i+1..] : v adjacent to u}; both sides sorted.
      const std::vector<uint32_t>& nbrs = adj_[u];
      size_t a = i + 1, b = 0;
      while (a < cand->size() && b < nbrs.size()) {
        if ((*cand)[a] < nbrs[b]) {
          ++a;
        } else if ((*cand)[a] > nbrs[b]) {
          ++b;
        } else {
          next.push_back((*cand)[a]);
          next_cnt[g_.attribute(vertex_at_[(*cand)[a]])]++;
          ++a;
          ++b;
        }
      }
      Attribute au = g_.attribute(vertex_at_[u]);
      r_.push_back(u);
      r_cnt_[au]++;
      Branch(next, next_cnt, depth + 1);
      r_.pop_back();
      r_cnt_[au]--;
    }
  }

  // Evaluates the configured bound on the subgraph induced by R ∪ C.
  int64_t UpperBoundOf(const std::vector<uint32_t>& cand) {
    std::vector<VertexId> verts;
    verts.reserve(r_.size() + cand.size());
    for (uint32_t r : r_) verts.push_back(vertex_at_[r]);
    for (uint32_t r : cand) verts.push_back(vertex_at_[r]);
    AttributedGraph sub = g_.InducedSubgraph(verts);
    return ComputeUpperBound(sub, options_.params.delta, options_.bounds);
  }

  const AttributedGraph& g_;
  const SearchOptions& options_;
  const Deadline& deadline_;
  SearchStats* stats_;
  CliqueResult* best_;
  std::atomic<int64_t>* floor_;
  bool aborted_ = false;

  const std::vector<uint32_t>& rank_of_;
  std::vector<VertexId> vertex_at_;
  std::vector<std::vector<uint32_t>> adj_;
  std::vector<uint32_t> r_;  // Current clique, as ranks.
  AttrCounts r_cnt_;
  std::function<VertexId(uint32_t)> map_;
};

// Word-parallel variant of ComponentSearch for dense components: candidate
// sets are bitsets over ranks, child sets are built with word-parallel
// kernels (runtime-dispatched scalar/AVX2/NEON, see common/bitset_simd.h).
// Branch semantics, pruning rules and answers are identical to the vector
// engine (asserted by differential tests).
//
// Layout: adjacency rows live in one contiguous cache-line-aligned
// BitsetArena (rows padded to 64 bytes) rather than n separate heap
// allocations, so the candidate∩row intersections of a branch walk dense
// memory; the next pivot's row is prefetched while the current child
// recurses. Child candidate sets come from a per-depth scratch pool (one
// Bitset per recursion level, reused across siblings) instead of a fresh
// allocation per node, and the child's per-attribute counts fall out of the
// fused dual-count intersection in the same pass that builds it.
class BitsetComponentSearch {
 public:
  BitsetComponentSearch(const AttributedGraph& comp,
                        const std::vector<uint32_t>& rank_of,
                        const SearchOptions& options, const Deadline& deadline,
                        SearchStats* stats, CliqueResult* best,
                        std::atomic<int64_t>* floor)
      : g_(comp),
        n_(comp.num_vertices()),
        options_(options),
        deadline_(deadline),
        stats_(stats),
        best_(best),
        floor_(floor),
        rank_of_(rank_of),
        nbr_(n_, n_) {
    vertex_at_.resize(n_);
    for (VertexId v = 0; v < n_; ++v) vertex_at_[rank_of_[v]] = v;
    attr_bits_[0] = Bitset(n_);
    attr_bits_[1] = Bitset(n_);
    for (VertexId v = 0; v < n_; ++v) {
      uint32_t r = rank_of_[v];
      for (VertexId w : g_.neighbors(v)) nbr_.SetBit(r, rank_of_[w]);
      attr_bits_[AttrIndex(g_.attribute(v))].Set(r);
    }
  }

  template <typename MapFn>
  void Run(MapFn&& to_original) {
    map_ = [&](uint32_t r) { return to_original(vertex_at_[r]); };
    Bitset all(n_);
    all.SetAll();
    AttrCounts cnt;
    cnt[Attribute::kA] = static_cast<int64_t>(attr_bits_[0].Count());
    cnt[Attribute::kB] = static_cast<int64_t>(attr_bits_[1].Count());
    r_.clear();
    r_cnt_ = AttrCounts{};
    Branch(all, cnt, 0);
  }

  bool aborted() const { return aborted_; }

 private:
  // Known incumbent size: the larger of this component's best and the
  // cross-component floor (shared by parallel workers).
  int64_t Known() const {
    int64_t local = static_cast<int64_t>(best_->size());
    if (floor_ != nullptr) {
      local = std::max(local, floor_->load(std::memory_order_relaxed));
    }
    return local;
  }

  int64_t Target() const {
    return std::max<int64_t>(2 * options_.params.k, Known() + 1);
  }

  // `cand` is the caller's scratch set for this depth; the callee may
  // consume it destructively (pivots are cleared as the loop advances, and
  // the delta-cap prune subtracts in place). Parents rebuild their scratch
  // from their own `cand` each iteration, so nothing downstream reads it
  // after the call.
  // fclint: hot-path-begin(branch_kernel)
  // The branch-and-bound inner loop: no allocation expressions, no string
  // building, no logging, no lock acquisition. (push_back into the
  // pre-sized incumbent / prefix vectors is the one sanctioned container
  // use.) tools/lint/fclint.py enforces this region.
  void Branch(Bitset& cand, AttrCounts cand_cnt, int depth) {
    if (aborted_) return;
    stats_->nodes++;
    if (options_.node_limit != 0 && stats_->nodes > options_.node_limit) {
      stats_->stop_reason = StopReason::kNodeLimit;
      aborted_ = true;
      return;
    }
    if ((stats_->nodes & 0x3ff) == 0) {
      // The deadline-check cadence doubles as the live-progress cadence:
      // one predictable branch per kilonode either way.
      if (options_.branch_tick != nullptr) (*options_.branch_tick)();
      if (options_.progress != nullptr) options_.progress->AddNodes(1024);
      if (deadline_.Expired()) {
        stats_->stop_reason = StopReason::kTimeLimit;
        aborted_ = true;
        return;
      }
    }
    if (static_cast<int64_t>(r_.size()) > Known() &&
        options_.params.Satisfied(r_cnt_)) {
      best_->vertices.clear();
      for (uint32_t r : r_) best_->vertices.push_back(map_(r));
      best_->attr_counts = r_cnt_;
      if (floor_ != nullptr) {
        RaiseFloor(floor_, static_cast<int64_t>(r_.size()));
      }
      if (options_.progress != nullptr) {
        options_.progress->NoteIncumbent(static_cast<int64_t>(r_.size()));
      }
    }
    int64_t cand_size = cand_cnt.Total();
    if (cand_size == 0) return;
    if (static_cast<int64_t>(r_.size()) + cand_size < Target()) {
      stats_->size_prunes++;
      return;
    }
    if (r_cnt_.a() + cand_cnt.a() < options_.params.k ||
        r_cnt_.b() + cand_cnt.b() < options_.params.k) {
      stats_->attr_prunes++;
      return;
    }
    for (Attribute x : {Attribute::kA, Attribute::kB}) {
      Attribute y = Other(x);
      if (cand_cnt[x] > 0 &&
          r_cnt_[x] >= r_cnt_[y] + cand_cnt[y] + options_.params.delta) {
        stats_->cap_removals += static_cast<uint64_t>(cand_cnt[x]);
        cand -= attr_bits_[AttrIndex(x)];
        cand_cnt[x] = 0;
        cand_size = cand_cnt.Total();
        if (static_cast<int64_t>(r_.size()) + cand_size < Target()) {
          stats_->size_prunes++;
          return;
        }
      }
    }
    if (depth < options_.bound_depth &&
        (options_.bounds.use_advanced ||
         options_.bounds.extra != ExtraBound::kNone)) {
      if (UpperBoundOf(cand) < Target()) {
        stats_->bound_prunes++;
        return;
      }
    }
    int64_t remaining = cand_size;
    Bitset& next = ScratchAt(depth);
    for (size_t u = cand.NextSetBit(0); u < cand.size(); --remaining) {
      if (aborted_) return;
      if (static_cast<int64_t>(r_.size()) + remaining < Target()) {
        stats_->size_prunes++;
        break;  // Later children only get smaller.
      }
      // "Rest" form of the ordered expansion: clearing the pivot makes
      // cand = {bits > u still eligible} (every bit < u was a pivot
      // already), so cand & nbr[u] equals the textbook
      // (cand & nbr[u]).ResetBelow(u + 1) without the extra pass.
      cand.Reset(u);
      size_t u_next = cand.NextSetBit(u + 1);
      // Pull the next pivot's adjacency row toward L1 while this child's
      // subtree runs; by the time the loop comes back around it is resident.
      if (u_next < cand.size()) nbr_.PrefetchRow(u_next);
      simd::DualCount dc =
          next.AssignIntersectDual(cand, nbr_.row(u), attr_bits_[0]);
      AttrCounts next_cnt;
      next_cnt[Attribute::kA] = static_cast<int64_t>(dc.in_mask);
      // Every vertex holds exactly one of the two attributes, so the B
      // count is the complement within the intersection.
      next_cnt[Attribute::kB] = static_cast<int64_t>(dc.total - dc.in_mask);
      Attribute au = g_.attribute(vertex_at_[u]);
      r_.push_back(static_cast<uint32_t>(u));
      r_cnt_[au]++;
      Branch(next, next_cnt, depth + 1);
      r_.pop_back();
      r_cnt_[au]--;
      u = u_next;
    }
  }
  // fclint: hot-path-end

  // One scratch Bitset per recursion depth, reused across every sibling at
  // that depth. A deque keeps references stable while deeper levels append.
  Bitset& ScratchAt(int depth) {
    while (static_cast<size_t>(depth) >= scratch_.size()) {
      scratch_.emplace_back(n_);
    }
    return scratch_[static_cast<size_t>(depth)];
  }

  int64_t UpperBoundOf(const Bitset& cand) {
    std::vector<VertexId> verts;
    verts.reserve(r_.size() + cand.Count());
    for (uint32_t r : r_) verts.push_back(vertex_at_[r]);
    cand.ForEachSetBit([&](size_t r) { verts.push_back(vertex_at_[r]); });
    AttributedGraph sub = g_.InducedSubgraph(verts);
    return ComputeUpperBound(sub, options_.params.delta, options_.bounds);
  }

  const AttributedGraph& g_;
  const VertexId n_;
  const SearchOptions& options_;
  const Deadline& deadline_;
  SearchStats* stats_;
  CliqueResult* best_;
  std::atomic<int64_t>* floor_;
  bool aborted_ = false;

  const std::vector<uint32_t>& rank_of_;
  std::vector<VertexId> vertex_at_;
  BitsetArena nbr_;
  Bitset attr_bits_[2];
  // Per-depth child-set scratch, one Bitset per recursion level. A deque so
  // references handed to recursive calls stay valid when deeper levels grow
  // the pool.
  std::deque<Bitset> scratch_;
  std::vector<uint32_t> r_;
  AttrCounts r_cnt_;
  std::function<VertexId(uint32_t)> map_;
};

// Bytes the bitset engine's blocked adjacency arena takes for an n-vertex
// component: n rows of n bits, each row padded to a whole cache line.
uint64_t ArenaBytesFor(VertexId n) {
  uint64_t words_per_row =
      ((static_cast<uint64_t>(n) + 63) / 64 + 7) & ~uint64_t{7};
  return static_cast<uint64_t>(n) * words_per_row * sizeof(uint64_t);
}

}  // namespace

const std::vector<uint32_t>& PreparedComponent::BranchPositions(
    BranchOrder order) const {
  int i = static_cast<int>(order);
  std::call_once(position_once_[i], [this, order, i] {
    positions_[i] = ComputeBranchPositions(graph, order);
  });
  return positions_[i];
}

bool PreparedGraph::Compatible(const SearchOptions& options) const {
  return options.params.k == k &&
         options.reductions.use_en_colorful_core ==
             reductions.use_en_colorful_core &&
         options.reductions.use_colorful_sup == reductions.use_colorful_sup &&
         options.reductions.use_en_colorful_sup ==
             reductions.use_en_colorful_sup;
}

uint64_t BitsetArenaBudgetBytes() {
  static const uint64_t budget = [] {
    constexpr uint64_t kMiB = 1024 * 1024;
    // Explicit override wins (benchmarks and tests pin the decision).
    if (const char* env = std::getenv("FAIRCLIQUE_BITSET_BUDGET_BYTES")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v > 0) return static_cast<uint64_t>(v);
    }
    // Otherwise size to the last-level cache: the arena should mostly live
    // there during a branch. Clamped so exotic cache reports cannot make
    // kAuto wildly aggressive or refuse components the old fixed threshold
    // (4096 vertices = exactly 2 MiB of arena) accepted.
    uint64_t cache = 0;
#if defined(_SC_LEVEL3_CACHE_SIZE)
    {
      long v = sysconf(_SC_LEVEL3_CACHE_SIZE);
      if (v > 0) cache = static_cast<uint64_t>(v);
    }
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
    if (cache == 0) {
      long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
      if (v > 0) cache = static_cast<uint64_t>(v);
    }
#endif
    if (cache == 0) return uint64_t{8} * kMiB;
    return std::min(uint64_t{32} * kMiB, std::max(uint64_t{2} * kMiB, cache));
  }();
  return budget;
}

EngineDecision ResolveEngineDecision(SearchEngine engine,
                                     VertexId component_vertices) {
  EngineDecision d;
  d.arena_bytes = ArenaBytesFor(component_vertices);
  d.budget_bytes = BitsetArenaBudgetBytes();
  if (engine != SearchEngine::kAuto) {
    d.engine = engine;
  } else {
    d.engine = d.arena_bytes <= d.budget_bytes ? SearchEngine::kBitset
                                               : SearchEngine::kVector;
  }
  return d;
}

SearchEngine ResolveEngine(SearchEngine engine, VertexId component_vertices) {
  return ResolveEngineDecision(engine, component_vertices).engine;
}

const char* SearchEngineName(SearchEngine engine) {
  switch (engine) {
    case SearchEngine::kAuto: return "auto";
    case SearchEngine::kVector: return "vector";
    case SearchEngine::kBitset: return "bitset";
  }
  return "auto";
}

std::shared_ptr<const PreparedGraph> PrepareGraph(
    const AttributedGraph& g, int k, const ReductionOptions& reductions) {
  FC_CHECK(k >= 1) << "fairness parameter k must be >= 1";
  obs::ProfileScope profile_scope("PrepareGraph");
  WallTimer timer;
  auto prepared = std::make_shared<PreparedGraph>();
  prepared->k = k;
  prepared->reductions = reductions;
  prepared->source_vertices = g.num_vertices();
  prepared->source_edges = g.num_edges();

  ReductionPipelineResult reduced = ReduceForFairClique(g, k, reductions);
  prepared->reduced = std::move(reduced.reduced);
  prepared->original_ids = std::move(reduced.original_ids);
  prepared->stages = std::move(reduced.stages);

  // Decompose: components below 2k vertices cannot hold a fair clique
  // (each attribute needs >= k members), so they never become tasks.
  std::vector<std::vector<VertexId>> components =
      prepared->reduced.ConnectedComponents();
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  for (std::vector<VertexId>& comp_vertices : components) {
    if (static_cast<int64_t>(comp_vertices.size()) < 2 * k) continue;
    auto comp = std::make_unique<PreparedComponent>();
    std::vector<VertexId> reduced_ids;
    comp->graph = prepared->reduced.InducedSubgraph(comp_vertices,
                                                    &reduced_ids);
    comp->original_ids.reserve(reduced_ids.size());
    for (VertexId r : reduced_ids) {
      comp->original_ids.push_back(prepared->original_ids[r]);
    }
    prepared->components.push_back(std::move(comp));
  }
  prepared->prepare_micros = timer.ElapsedMicros();
  return prepared;
}

IncumbentSeed SeedIncumbent(const AttributedGraph& g,
                            const PreparedGraph& prepared,
                            const SearchOptions& options) {
  obs::ProfileScope profile_scope("SeedIncumbent");
  IncumbentSeed seed;
  const AttributedGraph& rg = prepared.reduced;
  if (options.use_heuristic && rg.num_vertices() > 0) {
    WallTimer heur_timer;
    HeuristicOptions hopts{.params = options.params};
    HeuristicResult heur = HeurRFC(rg, hopts);
    seed.heuristic_micros = heur_timer.ElapsedMicros();
    seed.heuristic_size = static_cast<int64_t>(heur.clique.size());
    if (!heur.clique.empty()) {
      seed.clique.attr_counts = heur.clique.attr_counts;
      for (VertexId v : heur.clique.vertices) {
        seed.clique.vertices.push_back(prepared.original_ids[v]);
      }
    }
  }
  // Optional warm start from a caller-supplied known fair clique (dynamic
  // re-queries seed the previous epoch's answer). Verified against the
  // *original* graph — reduction may have pruned its vertices, but the
  // incumbent only flows into pruning through its size.
  if (static_cast<int64_t>(options.warm_start.size()) >
          static_cast<int64_t>(seed.clique.size()) &&
      VerifyFairClique(g, options.warm_start, options.params).ok()) {
    seed.clique.vertices = options.warm_start;
    seed.clique.attr_counts = CountAttributes(g, options.warm_start);
  }
  return seed;
}

ComponentBranchResult BranchComponent(const PreparedGraph& prepared,
                                      size_t component,
                                      const SearchOptions& options,
                                      const Deadline& deadline,
                                      std::atomic<int64_t>* floor) {
  FC_CHECK(prepared.Compatible(options))
      << "BranchComponent: options (k, reductions) do not match the plan";
  ComponentBranchResult out;
  const PreparedComponent& comp = *prepared.components[component];
  int64_t known =
      floor != nullptr ? floor->load(std::memory_order_relaxed) : 0;
  if (static_cast<int64_t>(comp.graph.num_vertices()) <
      std::max<int64_t>(2 * options.params.k, known + 1)) {
    return out;  // Component too small to beat the incumbent.
  }
  obs::ProfileScope profile_scope("BranchComponent");
  WallTimer timer;
  const std::vector<uint32_t>& rank_of = comp.BranchPositions(options.order);
  auto to_original = [&comp](VertexId local) {
    return comp.original_ids[local];
  };
  if (ResolveEngine(options.engine, comp.graph.num_vertices()) ==
      SearchEngine::kBitset) {
    BitsetComponentSearch search(comp.graph, rank_of, options, deadline,
                                 &out.stats, &out.best, floor);
    search.Run(to_original);
    out.aborted = search.aborted();
  } else {
    ComponentSearch search(comp.graph, rank_of, options, deadline, &out.stats,
                           &out.best, floor);
    search.Run(to_original);
    out.aborted = search.aborted();
  }
  out.stats.search_micros = timer.ElapsedMicros();
  return out;
}

SearchResult AggregatePreparedSearch(
    const PreparedGraph& prepared, const IncumbentSeed& seed,
    std::span<const ComponentBranchResult> results) {
  SearchResult result;
  result.clique = seed.clique;
  result.stats.heuristic_micros = seed.heuristic_micros;
  result.stats.heuristic_size = seed.heuristic_size;
  result.stats.reduction_stages = prepared.stages;
  for (const ComponentBranchResult& task : results) {
    result.stats.nodes += task.stats.nodes;
    result.stats.bound_prunes += task.stats.bound_prunes;
    result.stats.size_prunes += task.stats.size_prunes;
    result.stats.attr_prunes += task.stats.attr_prunes;
    result.stats.cap_removals += task.stats.cap_removals;
    result.stats.component_search_micros += task.stats.search_micros;
    if (task.aborted) result.stats.completed = false;
    result.stats.stop_reason =
        std::max(result.stats.stop_reason, task.stats.stop_reason);
    if (task.best.size() > result.clique.size()) {
      result.clique = task.best;
    }
  }
  std::sort(result.clique.vertices.begin(), result.clique.vertices.end());
  return result;
}

SearchResult SearchPreparedGraph(
    const AttributedGraph& g, const PreparedGraph& prepared,
    const SearchOptions& options,
    std::vector<ComponentBranchResult>* per_component) {
  FC_CHECK(options.params.k >= 1) << "fairness parameter k must be >= 1";
  FC_CHECK(options.params.delta >= 0) << "delta must be >= 0";
  FC_CHECK(prepared.Compatible(options))
      << "SearchPreparedGraph: options (k, reductions) do not match the plan";
  FC_CHECK(g.num_vertices() >= prepared.source_vertices)
      << "SearchPreparedGraph: graph is smaller than the plan's source";

  WallTimer total_timer;
  Deadline deadline(options.time_limit_seconds);

  IncumbentSeed seed = SeedIncumbent(g, prepared, options);
  std::atomic<int64_t> floor{static_cast<int64_t>(seed.clique.size())};

  WallTimer search_timer;
  std::vector<ComponentBranchResult> results(prepared.components.size());
  int num_threads = options.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  // Never spawn more workers than there are component tasks: with
  // num_threads <= 0 (hardware concurrency) on a small or well-reduced
  // graph, most threads would start only to find the task list empty.
  num_threads = std::min<int>(
      num_threads,
      static_cast<int>(std::max<size_t>(prepared.components.size(), 1)));
  if (num_threads == 1 || prepared.components.size() <= 1) {
    for (size_t i = 0; i < prepared.components.size(); ++i) {
      results[i] = BranchComponent(prepared, i, options, deadline, &floor);
      if (options.progress != nullptr) options.progress->NoteComponentDone();
      if (results[i].aborted) break;
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&]() {
        while (true) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= results.size()) return;
          results[i] = BranchComponent(prepared, i, options, deadline, &floor);
          if (options.progress != nullptr) {
            options.progress->NoteComponentDone();
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  SearchResult result = AggregatePreparedSearch(prepared, seed, results);
  result.stats.search_micros = search_timer.ElapsedMicros();
  result.stats.total_micros = total_timer.ElapsedMicros();
  if (per_component != nullptr) *per_component = std::move(results);
  return result;
}

}  // namespace fairclique
