#ifndef FAIRCLIQUE_CORE_FAIR_VARIANTS_H_
#define FAIRCLIQUE_CORE_FAIR_VARIANTS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/max_fair_clique.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Companion fairness models from the line of work the paper builds on
/// (Pan et al., ICDE'22 [23]; Zhang et al., TKDE'23 [24]): the *weak* fair
/// clique only lower-bounds each attribute's count; the *strong* fair clique
/// additionally forces exact equality. Both are special cases of the
/// relative model: weak = (k, delta -> infinity), strong = (k, delta = 0)
/// with even size. This module exposes them as first-class APIs on top of
/// the MaxRFC engine, plus maximal weak fair clique enumeration.

/// Maximum weak fair clique: the largest clique with >= k vertices of each
/// attribute (no balance constraint). Exact.
SearchResult FindMaximumWeakFairClique(const AttributedGraph& g, int k,
                                       ExtraBound extra = ExtraBound::kNone);

/// Maximum strong fair clique: the largest clique with an equal number
/// (>= k) of vertices of each attribute. Exact; the result size is even.
SearchResult FindMaximumStrongFairClique(const AttributedGraph& g, int k,
                                         ExtraBound extra = ExtraBound::kNone);

/// Enumerates all *maximal weak fair cliques*: maximal cliques whose
/// attribute counts are both >= k. (For weak fairness the condition is
/// upward-closed within cliques — attribute counts only grow — so the
/// maximal weak fair cliques are exactly the maximal cliques passing the
/// count filter, as exploited by the WFCEnum algorithm of [23].)
/// Returns the number enumerated; `max_results` (0 = unlimited) stops early.
uint64_t EnumerateWeakFairCliques(
    const AttributedGraph& g, int k,
    const std::function<void(const std::vector<VertexId>&)>& callback,
    uint64_t max_results = 0);

/// Enumerates all *relative fair cliques* per Definition 1 — fairness-
/// satisfying cliques that are maximal among fairness-satisfying cliques.
/// A clique C qualifies iff no proper clique superset C' also satisfies
/// fairness. Exhaustive (intended for analysis and ground truth at moderate
/// scale): walks maximal cliques and tests candidate subsets against the
/// upward closure. Returns the count; `max_results` stops early.
uint64_t EnumerateRelativeFairCliques(
    const AttributedGraph& g, const FairnessParams& params,
    const std::function<void(const std::vector<VertexId>&)>& callback,
    uint64_t max_results = 0);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_FAIR_VARIANTS_H_
