#ifndef FAIRCLIQUE_CORE_MAX_FAIR_CLIQUE_H_
#define FAIRCLIQUE_CORE_MAX_FAIR_CLIQUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "bounds/upper_bounds.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "reduction/reduce.h"

namespace fairclique {

namespace obs {
class QueryProgress;  // obs/progress.h; optional live-progress sink
}  // namespace obs

/// Which branch kernel runs inside a connected component. Both are exact
/// and produce identical answers (differentially tested); they differ only
/// in candidate-set representation.
enum class SearchEngine {
  kAuto,    // Bitset while its adjacency arena fits the cache-sized memory
            // budget (see BitsetArenaBudgetBytes), vectors beyond.
  kVector,  // Sorted candidate vectors; O(|C| + deg) child construction.
  kBitset,  // Word-parallel candidate bitsets; fastest on dense residues.
};

/// Vertex ordering used by the ordered branch enumeration. The paper's
/// CalColorOD (colorful-core peeling order) is the default; the others are
/// ablation alternatives (bench_ablation section f).
enum class BranchOrder {
  kColorfulCore,  // CalColorOD: colorful-core peel order (paper default).
  kDegeneracy,    // Plain k-core peel order.
  kDegree,        // Ascending degree; no peeling information.
};

/// Number of BranchOrder enumerators; sizes the per-order memo arrays in
/// PreparedComponent (static_asserted there — update both together).
inline constexpr int kBranchOrderCount = 3;

/// Configuration of the maximum relative fair clique search (Algorithm 2
/// with the pruning arsenal of Sections III-V).
struct SearchOptions {
  FairnessParams params;

  /// Branch kernel selection (see SearchEngine).
  SearchEngine engine = SearchEngine::kAuto;

  /// Vertex ordering for the branch enumeration (see BranchOrder).
  BranchOrder order = BranchOrder::kColorfulCore;

  /// Graph reduction stages run before the search (Alg. 2 lines 1-3). All
  /// three on = the paper's MaxRFC; toggled off for ablation.
  ReductionOptions reductions;

  /// Upper bounds applied at shallow branch nodes. `use_advanced = false`
  /// and `extra = kNone` reproduces the MaxRFC baseline (only the trivial
  /// |R| + |C| prune of Alg. 3 line 19, which is always on).
  UpperBoundConfig bounds{.use_advanced = false, .extra = ExtraBound::kNone};

  /// Prime the incumbent with HeurRFC before branching ("MaxRFC+ub+HeurRFC"
  /// in the paper's Fig. 6/7).
  bool use_heuristic = false;

  /// Optional warm start: a known fair clique of the input graph (original
  /// vertex ids), e.g. a cached result that survived a graph update. It is
  /// revalidated with the verifier before use and silently ignored when
  /// invalid, so a stale set can cost only time, never correctness. A valid
  /// warm start primes the incumbent like the heuristic does: the answer
  /// *size* is unchanged (the search still proves optimality), only the
  /// returned witness may differ — which is why the field is excluded from
  /// CanonicalOptionsKey.
  std::vector<VertexId> warm_start;

  /// Apply the configured (expensive) upper bounds at branch depths strictly
  /// below this value. Depth 0 is each connected component's root; depth 1
  /// re-checks after the first vertex is chosen ("when selecting vertices to
  /// be added to R for the first time", Section VI-A).
  int bound_depth = 2;

  /// Safety valves: stop and mark the result incomplete after this many
  /// branch nodes / seconds (0 = unlimited). The node limit is per
  /// component when searching in parallel.
  uint64_t node_limit = 0;
  double time_limit_seconds = 0.0;

  /// Worker threads searching connected components concurrently. Components
  /// share the incumbent *size* through an atomic floor, so pruning strength
  /// matches the sequential search; the answer (and its size) is identical
  /// — only node counts may differ run to run. 0 = hardware concurrency.
  int num_threads = 1;

  /// Optional live-progress sink: when set, the branch kernels publish node
  /// counts at the 1024-node deadline-check cadence and new incumbents as
  /// they are recorded (relaxed atomics; see obs/progress.h). Purely
  /// observational — never consulted by the search — and, like warm_start,
  /// excluded from CanonicalOptionsKey. Not owned.
  obs::QueryProgress* progress = nullptr;

  /// Test/ops hook invoked at the same 1024-node cadence, before the
  /// progress publish and deadline check. The watchdog tests use it to
  /// freeze a search deterministically mid-Branch (a blocking tick stops
  /// both node publishing and the deadline check — exactly the "wedged
  /// kernel" failure mode the watchdog exists to catch). Like `progress`,
  /// observational only and excluded from CanonicalOptionsKey. Not owned.
  const std::function<void()>* branch_tick = nullptr;
};

/// Why a search stopped before proving optimality. Ordered by precedence:
/// when components stop for different reasons, the aggregate keeps the
/// largest value (a wall-clock stop subsumes a node-budget stop).
enum class StopReason : uint8_t {
  kNone = 0,       // ran to completion (stats.completed == true)
  kNodeLimit = 1,  // SearchOptions::node_limit exhausted
  kTimeLimit = 2,  // SearchOptions::time_limit_seconds / deadline expired
};

/// Wire/log name of a stop reason: "", "node_limit", "time_limit".
const char* StopReasonName(StopReason reason);

/// Search telemetry reported by the benchmark harnesses.
struct SearchStats {
  uint64_t nodes = 0;            // Branch invocations
  uint64_t bound_prunes = 0;     // Branches cut by configured upper bounds
  uint64_t size_prunes = 0;      // Branches cut by |R| + |C| (Lemma 5)
  uint64_t attr_prunes = 0;      // Branches cut by attribute infeasibility
  uint64_t cap_removals = 0;     // Candidates dropped by the delta cap
  int64_t reduce_micros = 0;
  int64_t heuristic_micros = 0;
  int64_t search_micros = 0;
  /// Sum of per-component branch times, accumulated in component order (not
  /// completion order), so multi-threaded runs aggregate deterministically
  /// instead of reflecting whichever component finished last. Exceeds
  /// search_micros (wall clock) when components ran in parallel.
  int64_t component_search_micros = 0;
  int64_t total_micros = 0;
  bool completed = true;         // false when a limit stopped the search
  /// Which safety valve stopped the search (kNone iff completed). Kept
  /// alongside `completed` so existing consumers keep their bool while the
  /// service can attribute the miss (deadline vs node budget).
  StopReason stop_reason = StopReason::kNone;
  int64_t heuristic_size = 0;    // |HeurRFC clique| when priming is enabled
  std::vector<ReductionStageStats> reduction_stages;
};

/// Result: the maximum relative fair clique in original vertex ids (empty
/// when none exists) and the run's statistics.
struct SearchResult {
  CliqueResult clique;
  SearchStats stats;
};

/// Finds a maximum relative fair clique of `g` under `options.params`.
///
/// Implementation: reduction pipeline -> per-connected-component ordered
/// branch-and-bound in colorful-core peeling order (CalColorOD), checking
/// fairness at every node and applying the paper's prunes in their sound
/// forms (DESIGN.md §2.2). Exact: verified against the independent
/// Bron-Kerbosch oracle in tests/max_fair_clique_test.cpp.
///
/// Since the staged-plan refactor this is a thin wrapper over
/// core/prepared_graph.h: PrepareGraph (Reduce + Decompose, delta-
/// independent) followed by SearchPreparedGraph (Branch). Workloads that
/// sweep delta/bounds on one (graph, k) should prepare once and branch per
/// query instead of paying the reduction every time.
SearchResult FindMaximumFairClique(const AttributedGraph& g,
                                   const SearchOptions& options);

/// Convenience presets matching the paper's three algorithm families.
SearchOptions BaselineOptions(int k, int delta);              // MaxRFC
SearchOptions BoundedOptions(int k, int delta,
                             ExtraBound extra);               // MaxRFC+ub
SearchOptions FullOptions(int k, int delta, ExtraBound extra);// +HeurRFC

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_MAX_FAIR_CLIQUE_H_
