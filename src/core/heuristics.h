#ifndef FAIRCLIQUE_CORE_HEURISTICS_H_
#define FAIRCLIQUE_CORE_HEURISTICS_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Options for the heuristic framework. `num_starts` = 1 reproduces the
/// paper's Algorithms 5-6 (single greedy pass from the best-scoring vertex);
/// larger values retry from the next-best start vertices and keep the best
/// fair clique found. `local_search` post-optimizes the greedy result with
/// fairness-preserving add/swap moves. Both extensions are off-by-default
/// paper-faithful knobs measured in bench_ablation.
struct HeuristicOptions {
  FairnessParams params;
  int num_starts = 1;
  bool local_search = false;
};

/// Result of a heuristic run: the fair clique found (empty when the greedy
/// pass ends on an unfair clique), plus the color-count upper bound computed
/// by HeurRFC (Algorithm 6 lines 9-10; 0 when not computed).
struct HeuristicResult {
  CliqueResult clique;
  int64_t color_upper_bound = 0;
};

/// DegHeur (Algorithm 5): greedily grows a clique by repeatedly adding the
/// highest-degree candidate of the alternating attribute, with the paper's
/// amax cap (lines 9-13) bounding the majority side at (minority + delta).
/// Returns an empty clique when the greedy pass fails fairness. O(V + E).
CliqueResult DegHeur(const AttributedGraph& g, const HeuristicOptions& options);

/// ColorfulDegHeur: DegHeur with selection key min(D_a(v), D_b(v)) — the
/// colorful degree (Definition 2) under a greedy coloring — instead of
/// degree. O(V + E).
CliqueResult ColorfulDegHeur(const AttributedGraph& g,
                             const HeuristicOptions& options);

/// HeurRFC (Algorithm 6): runs DegHeur, shrinks the graph to the
/// (|R*|-1)-core, runs ColorfulDegHeur on the remainder, keeps the larger
/// fair clique, shrinks again, and reports the surviving graph's color count
/// as an upper bound on the maximum fair clique size. O(V + E).
HeuristicResult HeurRFC(const AttributedGraph& g,
                        const HeuristicOptions& options);

/// Fairness-preserving local search: starting from a fair clique, repeats
///   (1) ADD — append any common neighbor that keeps fairness;
///   (2) SWAP — replace one member by two adjacent non-members when the
///       result is a strictly larger fair clique;
/// until neither applies. Returns a fair clique no smaller than the input
/// (the input itself if it is empty or not a fair clique). Each round costs
/// O(|C| * V * deg); rounds are bounded by the clique number.
CliqueResult LocalSearchImprove(const AttributedGraph& g, CliqueResult seed,
                                const FairnessParams& params);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_HEURISTICS_H_
