#ifndef FAIRCLIQUE_CORE_OPTIONS_KEY_H_
#define FAIRCLIQUE_CORE_OPTIONS_KEY_H_

#include <string>

#include "core/max_fair_clique.h"

namespace fairclique {

/// Canonical cache key of a SearchOptions: a compact string identifying the
/// *answer* a search will produce, used by the service-layer result cache.
///
/// Two options that cannot produce different results map to the same key:
///  - `engine` is dropped — the vector and bitset kernels are exact and
///    differentially tested to return identical answers;
///  - `num_threads` is dropped — workers share only the incumbent size, so
///    the answer is identical and only node counts vary run to run;
///  - `warm_start` is dropped — a (verified) warm start primes the incumbent
///    but the search still proves optimality, so the answer *size* is
///    identical; the returned witness may differ, which callers must treat
///    as unspecified (as they already do for thread scheduling).
///
/// Everything that can change the returned clique or the `completed` flag is
/// included: fairness parameters, branch order, reduction toggles, bound
/// configuration, heuristic priming, bound depth, and the node/time safety
/// valves. In particular the three presets (BaselineOptions, BoundedOptions,
/// FullOptions) resolve to distinct keys, while any two call sites building
/// equal options — by preset or by hand — collide on the same key.
std::string CanonicalOptionsKey(const SearchOptions& options);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_OPTIONS_KEY_H_
