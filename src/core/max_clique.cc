#include "core/max_clique.h"

#include <algorithm>
#include <numeric>

#include "graph/cores.h"

namespace fairclique {

namespace {

// Branch-and-bound engine over rank-space adjacency (degeneracy order).
class CliqueSearch {
 public:
  CliqueSearch(const AttributedGraph& g, uint64_t node_limit)
      : node_limit_(node_limit) {
    CoreDecomposition cores = ComputeCores(g);
    rank_of_ = cores.position;
    vertex_at_.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      vertex_at_[rank_of_[v]] = v;
    }
    adj_.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto& row = adj_[rank_of_[v]];
      row.reserve(g.degree(v));
      for (VertexId w : g.neighbors(v)) row.push_back(rank_of_[w]);
      std::sort(row.begin(), row.end());
    }
  }

  MaxCliqueResult Run() {
    const uint32_t n = static_cast<uint32_t>(adj_.size());
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    Branch(all);
    MaxCliqueResult result;
    result.nodes = nodes_;
    result.completed = !aborted_;
    result.clique.reserve(best_.size());
    for (uint32_t r : best_) result.clique.push_back(vertex_at_[r]);
    std::sort(result.clique.begin(), result.clique.end());
    return result;
  }

 private:
  // Greedy-colors `cand` (in place ordering preserved) and returns for each
  // index the number of colors used by cand[0..i] — the classic coloring
  // bound: a clique inside cand[0..i] has size <= colors(i).
  std::vector<uint32_t> ColorBoundPrefix(const std::vector<uint32_t>& cand) {
    // color_of uses small ints; candidates are few at deep nodes.
    std::vector<uint32_t> bound(cand.size());
    std::vector<int> color_of(cand.size(), -1);
    int num_colors = 0;
    for (size_t i = 0; i < cand.size(); ++i) {
      // Smallest color not used by earlier adjacent candidates.
      uint64_t used = 0;  // Bitmask over first 64 colors; overflow -> linear.
      for (size_t j = 0; j < i; ++j) {
        if (color_of[j] >= 0 && color_of[j] < 64 &&
            Adjacent(cand[i], cand[j])) {
          used |= 1ULL << color_of[j];
        }
      }
      int c = 0;
      while (c < 64 && (used >> c) & 1ULL) ++c;
      if (c == 64) {
        // Rare: fall back to scanning for a free color linearly.
        std::vector<uint8_t> taken(num_colors + 1, 0);
        for (size_t j = 0; j < i; ++j) {
          if (Adjacent(cand[i], cand[j])) taken[color_of[j]] = 1;
        }
        c = 0;
        while (taken[c]) ++c;
      }
      color_of[i] = c;
      num_colors = std::max(num_colors, c + 1);
      bound[i] = static_cast<uint32_t>(num_colors);
    }
    return bound;
  }

  bool Adjacent(uint32_t a, uint32_t b) const {
    const auto& row = adj_[a];
    return std::binary_search(row.begin(), row.end(), b);
  }

  void Branch(const std::vector<uint32_t>& cand) {
    if (aborted_) return;
    ++nodes_;
    if (node_limit_ != 0 && nodes_ > node_limit_) {
      aborted_ = true;
      return;
    }
    if (r_.size() > best_.size()) best_ = r_;
    if (cand.empty()) return;
    std::vector<uint32_t> bound = ColorBoundPrefix(cand);
    // Iterate candidates from the back: the prefix coloring bound applies to
    // cand[0..i], so the i-th branch can contain at most bound[i] more
    // vertices.
    for (size_t i = cand.size(); i-- > 0;) {
      if (r_.size() + bound[i] <= best_.size()) return;  // All further pruned.
      uint32_t u = cand[i];
      std::vector<uint32_t> next;
      for (size_t j = 0; j < i; ++j) {
        if (Adjacent(u, cand[j])) next.push_back(cand[j]);
      }
      r_.push_back(u);
      Branch(next);
      r_.pop_back();
      if (aborted_) return;
    }
  }

  uint64_t node_limit_;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
  std::vector<uint32_t> rank_of_;
  std::vector<VertexId> vertex_at_;
  std::vector<std::vector<uint32_t>> adj_;
  std::vector<uint32_t> r_;
  std::vector<uint32_t> best_;
};

}  // namespace

MaxCliqueResult FindMaximumClique(const AttributedGraph& g,
                                  uint64_t node_limit) {
  if (g.num_vertices() == 0) return {};
  CliqueSearch search(g, node_limit);
  return search.Run();
}

std::vector<VertexId> GreedyCliqueLowerBound(const AttributedGraph& g) {
  // Walk the reverse degeneracy order; keep vertices adjacent to all kept.
  CoreDecomposition cores = ComputeCores(g);
  std::vector<VertexId> clique;
  for (auto it = cores.peel_order.rbegin(); it != cores.peel_order.rend();
       ++it) {
    VertexId v = *it;
    bool ok = true;
    for (VertexId c : clique) {
      if (!g.HasEdge(v, c)) {
        ok = false;
        break;
      }
    }
    if (ok) clique.push_back(v);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

}  // namespace fairclique
