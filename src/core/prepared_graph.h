#ifndef FAIRCLIQUE_CORE_PREPARED_GRAPH_H_
#define FAIRCLIQUE_CORE_PREPARED_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/timer.h"
#include "core/max_fair_clique.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "reduction/reduce.h"

namespace fairclique {

/// One connected component of the reduced graph, relabeled to local vertex
/// ids, with its branch orderings memoized per BranchOrder. The orderings
/// are the delta-independent half of the branch stage: CalColorOD (or the
/// ablation orders) depends only on the component's structure, so a
/// delta-sweep over one PreparedGraph computes each ordering once.
struct PreparedComponent {
  AttributedGraph graph;
  /// Local component vertex id -> id in the *input* graph the plan was
  /// prepared from (the reduction and decomposition maps pre-composed).
  std::vector<VertexId> original_ids;

  /// Rank position of each local vertex under `order`, computed on first
  /// use and memoized; thread-safe, so concurrent component tasks of
  /// different queries can share one PreparedComponent.
  ///
  /// Only the positions are memoized. The engines' rank-space adjacency
  /// (sorted rows / n^2-bit neighbor bitsets) is also delta-independent but
  /// is rebuilt per BranchComponent on purpose: it is O(E) against an
  /// exponential branch stage, while caching it — per (order, engine) — in
  /// a plan that lives in an LRU would pin up to ~2 MB per dense component
  /// for as long as the plan stays cached.
  const std::vector<uint32_t>& BranchPositions(BranchOrder order) const;

 private:
  static_assert(static_cast<int>(BranchOrder::kDegree) ==
                    kBranchOrderCount - 1,
                "memo arrays below must cover every BranchOrder");
  mutable std::once_flag position_once_[kBranchOrderCount];
  mutable std::vector<uint32_t> positions_[kBranchOrderCount];
};

/// The reusable, delta-independent artifact of the first two search stages:
///
///   Reduce     — EnColorfulCore -> ColorfulSup -> EnColorfulSup (Lemmas
///                2-4) for a fixed (k, ReductionOptions); independent of
///                delta, bounds, engine, heuristic, and thread count.
///   Decompose  — connected components of the reduced graph, materialized
///                as local subgraphs sorted largest-first, each carrying
///                its original-id map and (lazily) its branch orderings.
///
/// A PreparedGraph is immutable after PrepareGraph returns (the memoized
/// orderings are internally synchronized) and is shared across queries as
/// shared_ptr<const>; the service-layer PreparedGraphCache keys it by
/// (graph fingerprint, k, reduction options).
struct PreparedGraph {
  int k = 1;
  ReductionOptions reductions;
  /// Shape of the input graph the plan was prepared from, for cheap sanity
  /// checks at search time. Vertices may legitimately *grow* past this on a
  /// forwarded plan (appended isolated vertices cannot join a fair clique),
  /// which is why SearchPreparedGraph checks >=, not ==.
  VertexId source_vertices = 0;
  EdgeId source_edges = 0;

  /// The reduced graph (heuristic priming runs on it) and its vertex map
  /// back to the input graph; original_ids is strictly increasing.
  AttributedGraph reduced;
  std::vector<VertexId> original_ids;
  std::vector<ReductionStageStats> stages;
  /// Wall time PrepareGraph spent (reduction + decomposition), so cache
  /// consumers can report what a hit saved.
  int64_t prepare_micros = 0;

  /// Components with at least 2k vertices (smaller ones cannot hold a fair
  /// clique), largest-first. unique_ptr because the memoization state is
  /// not movable.
  std::vector<std::unique_ptr<PreparedComponent>> components;

  /// True when `options` asks for the (k, reductions) this plan was built
  /// with — the compatibility contract of every Branch-stage entry point.
  bool Compatible(const SearchOptions& options) const;
};

/// Stage 1+2: runs the reduction pipeline and decomposes the survivor into
/// prepared components. Everything delta-dependent is deferred to the
/// Branch stage.
std::shared_ptr<const PreparedGraph> PrepareGraph(
    const AttributedGraph& g, int k, const ReductionOptions& reductions);

/// Delta-dependent incumbent seeding (the old stages 2/2b): optional
/// HeurRFC on the reduced graph plus an optional caller-supplied warm
/// start, verified against `g` (the graph the plan was prepared from).
struct IncumbentSeed {
  CliqueResult clique;  // original input-graph ids; may be empty
  int64_t heuristic_micros = 0;
  int64_t heuristic_size = 0;
};
IncumbentSeed SeedIncumbent(const AttributedGraph& g,
                            const PreparedGraph& prepared,
                            const SearchOptions& options);

/// Outcome of branching one prepared component.
struct ComponentBranchResult {
  CliqueResult best;  // original input-graph ids; empty when not improved
  SearchStats stats;  // nodes/prunes/caps; search_micros = this component
  bool aborted = false;
};

/// How kAuto chose (or an explicit choice was annotated) for one component:
/// the engine, the bytes the bitset engine's blocked adjacency arena would
/// occupy at this component size, and the memory budget the arena was
/// compared against. Surfaced per component in EXPLAIN plans so dispatch
/// regressions are visible per query.
struct EngineDecision {
  SearchEngine engine = SearchEngine::kVector;
  uint64_t arena_bytes = 0;
  uint64_t budget_bytes = 0;
};

/// The memory budget kAuto allows the bitset engine's adjacency arena:
/// FAIRCLIQUE_BITSET_BUDGET_BYTES when set, otherwise the machine's
/// last-level cache size clamped to [2 MiB, 32 MiB] (8 MiB when the size
/// cannot be determined). The 2 MiB floor keeps every component the old
/// fixed 4096-vertex threshold accepted on the bitset engine.
uint64_t BitsetArenaBudgetBytes();

/// Resolves the engine for a component of `component_vertices` vertices:
/// kAuto picks the bitset engine whenever its arena fits the budget, an
/// explicit engine choice passes through (with the arena/budget numbers
/// still filled in for observability).
EngineDecision ResolveEngineDecision(SearchEngine engine,
                                     VertexId component_vertices);

/// Shorthand for ResolveEngineDecision(...).engine.
SearchEngine ResolveEngine(SearchEngine engine, VertexId component_vertices);

/// Protocol/plan name of an engine: "auto" | "vector" | "bitset".
const char* SearchEngineName(SearchEngine engine);

/// Stage 3 for a single component: ordered branch-and-bound over
/// prepared.components[component] under `options` (which must be
/// Compatible). `floor` is the query's shared incumbent-size floor; the
/// component is skipped outright when it is too small to beat
/// max(2k, floor + 1) at call time. Thread-safe across components, which is
/// what lets a service scheduler interleave components of many queries on
/// one worker pool.
ComponentBranchResult BranchComponent(const PreparedGraph& prepared,
                                      size_t component,
                                      const SearchOptions& options,
                                      const Deadline& deadline,
                                      std::atomic<int64_t>* floor);

/// Deterministic reduction of per-component outcomes into one SearchResult:
/// counters and per-component branch times are *summed in component order*
/// (never last-writer-wins, so repeated runs aggregate identically no
/// matter how the scheduler interleaved the tasks), the best clique wins by
/// size with the seed as the baseline, and the clique is sorted. The caller
/// owns the wall-clock fields (reduce/search/total_micros).
SearchResult AggregatePreparedSearch(
    const PreparedGraph& prepared, const IncumbentSeed& seed,
    std::span<const ComponentBranchResult> results);

/// The full Branch stage: seeds the incumbent, searches every prepared
/// component (options.num_threads workers sharing an atomic floor), and
/// aggregates. Identical answers to FindMaximumFairClique(g, options) —
/// which is now a thin wrapper over PrepareGraph + this.
///
/// `per_component`, when non-null, receives the raw per-component outcomes
/// (indexed like prepared.components) that AggregatePreparedSearch folded
/// into the result — the data an EXPLAIN plan is made of, otherwise
/// discarded.
SearchResult SearchPreparedGraph(
    const AttributedGraph& g, const PreparedGraph& prepared,
    const SearchOptions& options,
    std::vector<ComponentBranchResult>* per_component = nullptr);

/// The time budget left for the Branch stage after `elapsed_seconds` were
/// already spent (preparation, cache probes): callers staging the search
/// themselves use this to keep the overall limit equal to the monolith's,
/// where one clock spanned reduction + branch. 0 stays 0 (= unlimited); an
/// exhausted budget returns a tiny positive value so the branch kernels
/// abort at their first deadline check instead of running unlimited.
inline double RemainingTimeBudget(double limit_seconds,
                                  double elapsed_seconds) {
  if (limit_seconds <= 0.0) return limit_seconds;
  double remaining = limit_seconds - elapsed_seconds;
  return remaining > 1e-9 ? remaining : 1e-9;
}

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_PREPARED_GRAPH_H_
