#ifndef FAIRCLIQUE_CORE_VERIFIER_H_
#define FAIRCLIQUE_CORE_VERIFIER_H_

#include <span>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// True when `vertices` (distinct ids) induce a complete subgraph of `g`.
/// O(s^2 log d).
bool IsClique(const AttributedGraph& g, std::span<const VertexId> vertices);

/// Attribute counts of a vertex set.
AttrCounts CountAttributes(const AttributedGraph& g,
                           std::span<const VertexId> vertices);

/// True when `vertices` is a clique satisfying fairness condition (i) of
/// Definition 1 for (k, delta): both attribute counts >= k and their
/// difference <= delta. Following the paper's Example 1, maximality is not
/// required for the maximum search problem (see DESIGN.md §2.1).
bool IsFairClique(const AttributedGraph& g,
                  std::span<const VertexId> vertices,
                  const FairnessParams& params);

/// Detailed verification with a diagnostic message on failure: checks vertex
/// range, distinctness, completeness, and fairness.
Status VerifyFairClique(const AttributedGraph& g,
                        std::span<const VertexId> vertices,
                        const FairnessParams& params);

}  // namespace fairclique

#endif  // FAIRCLIQUE_CORE_VERIFIER_H_
