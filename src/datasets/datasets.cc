#include "datasets/datasets.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "graph/generators.h"

namespace fairclique {

namespace {

// Plants a handful of balanced cliques (sizes 12..22) so that fair cliques
// exist across the k ranges swept by the experiments — the stand-in
// counterpart of the large natural cliques in the paper's real datasets
// (collaboration networks have author cliques per paper; socials have dense
// friend groups) — plus a few dozen medium unbalanced cliques that thicken
// the clique-rich residue the reductions cannot remove, so the
// branch-and-bound phase has realistic work at small k.
AttributedGraph PlantStandardCliques(AttributedGraph g, Rng& rng) {
  for (uint32_t size : {12u, 14u, 16u, 18u, 20u, 22u}) {
    if (size <= g.num_vertices()) {
      g = PlantClique(g, size, /*balanced=*/true, rng, nullptr);
    }
  }
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    builder.SetAttribute(v, g.attribute(v));
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
  for (int c = 0; c < 80; ++c) {
    uint32_t size = static_cast<uint32_t>(rng.NextInRange(6, 12));
    if (size > g.num_vertices()) continue;
    std::vector<uint64_t> members = rng.SampleDistinct(g.num_vertices(), size);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        builder.AddEdge(static_cast<VertexId>(members[i]),
                        static_cast<VertexId>(members[j]));
      }
    }
  }
  return builder.Build();
}

}  // namespace

std::vector<DatasetSpec> StandardDatasets() {
  return {
      {"themarker-s", {2, 3, 4, 5, 6}, 6, 3},
      {"google-s", {5, 6, 7, 8, 9}, 7, 4},
      {"dblp-s", {5, 6, 7, 8, 9}, 7, 4},
      {"flixster-s", {2, 3, 4, 5, 6}, 3, 3},
      {"pokec-s", {3, 4, 5, 6, 7}, 4, 4},
      {"aminer-s", {4, 5, 6, 7, 8}, 6, 4},
  };
}

DatasetSpec DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) return spec;
  }
  FC_CHECK(false) << "unknown dataset: " << name;
  return {};
}

AttributedGraph LoadDataset(const std::string& name, double scale) {
  FC_CHECK(scale > 0) << "scale must be positive";
  auto scaled = [scale](VertexId n) {
    return static_cast<VertexId>(std::llround(n * scale));
  };
  // One fixed seed per dataset: stand-ins are deterministic artifacts, not
  // random draws.
  if (name == "themarker-s") {
    Rng rng(0x7E3A);
    AttributedGraph g = ChungLuPowerLaw(scaled(1500), 24.0, 2.3, rng);
    g = AssignAttributesBernoulli(g, 0.5, rng);
    return PlantStandardCliques(std::move(g), rng);
  }
  if (name == "google-s") {
    Rng rng(0x600613);
    AttributedGraph g = BarabasiAlbert(scaled(6000), 4, rng);
    g = AssignAttributesBernoulli(g, 0.5, rng);
    return PlantStandardCliques(std::move(g), rng);
  }
  if (name == "dblp-s") {
    Rng rng(0xDB19);
    PlantedCliqueOptions opts;
    opts.num_vertices = scaled(5000);
    opts.background_edge_prob = 0.0008;
    opts.num_cliques = 400;
    opts.min_clique_size = 4;
    opts.max_clique_size = 14;
    AttributedGraph g = PlantedCliqueGraph(opts, rng);
    g = AssignAttributesBernoulli(g, 0.5, rng);
    return PlantStandardCliques(std::move(g), rng);
  }
  if (name == "flixster-s") {
    Rng rng(0xF11C);
    AttributedGraph g = ChungLuPowerLaw(scaled(6000), 6.0, 2.6, rng);
    g = AssignAttributesBernoulli(g, 0.5, rng);
    return PlantStandardCliques(std::move(g), rng);
  }
  if (name == "pokec-s") {
    Rng rng(0x90CEC);
    AttributedGraph g = ChungLuPowerLaw(scaled(4000), 22.0, 2.4, rng);
    g = AssignAttributesBernoulli(g, 0.5, rng);
    return PlantStandardCliques(std::move(g), rng);
  }
  if (name == "aminer-s") {
    Rng rng(0xA01);
    PlantedCliqueOptions opts;
    opts.num_vertices = scaled(3000);
    opts.background_edge_prob = 0.001;
    opts.num_cliques = 250;
    opts.min_clique_size = 4;
    opts.max_clique_size = 12;
    AttributedGraph g = PlantedCliqueGraph(opts, rng);
    // Correlated attributes simulate the real gender attribute (68/32 mix
    // with strong homophily, as observed in scholarly collaboration data).
    g = AssignAttributesHomophily(g, 0.68, 0.8, rng);
    return PlantStandardCliques(std::move(g), rng);
  }
  FC_CHECK(false) << "unknown dataset: " << name;
  return {};
}

}  // namespace fairclique
