#ifndef FAIRCLIQUE_DATASETS_DATASETS_H_
#define FAIRCLIQUE_DATASETS_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Deterministic synthetic stand-ins for the paper's six evaluation datasets
/// (Table I). The real graphs are downloaded from SNAP/network-repository;
/// this offline reproduction generates graphs with the same structural roles
/// at laptop/CI scale (DESIGN.md §3):
///
///   themarker-s  dense social network   (Chung-Lu, heavy tail, high dmax)
///   google-s     sparse web graph       (Barabasi-Albert)
///   dblp-s       collaboration network  (overlapping planted cliques)
///   flixster-s   sparse social network  (Chung-Lu, low average degree)
///   pokec-s      dense social network   (Chung-Lu, largest edge count)
///   aminer-s     collaboration network with *correlated* attributes
///                (homophily model simulating the real gender attribute)
///
/// Non-attributed stand-ins receive Bernoulli(1/2) attributes, exactly as
/// the paper does for its non-attributed datasets.
struct DatasetSpec {
  std::string name;
  /// k values swept in the reduction/search experiments, mirroring the
  /// paper's per-dataset ranges (Section VI-A, scaled to stand-in size).
  std::vector<int> k_range;
  int default_k = 3;
  int default_delta = 3;
};

/// The six stand-in specs in the paper's order.
std::vector<DatasetSpec> StandardDatasets();

/// Spec by name; aborts on unknown names.
DatasetSpec DatasetByName(const std::string& name);

/// Materializes a stand-in dataset. Deterministic per (name, scale): the
/// same graph is produced on every call. `scale` multiplies the vertex
/// count (1.0 = default CI-friendly size, ~2-6k vertices).
AttributedGraph LoadDataset(const std::string& name, double scale = 1.0);

}  // namespace fairclique

#endif  // FAIRCLIQUE_DATASETS_DATASETS_H_
