#ifndef FAIRCLIQUE_GRAPH_GENERATORS_H_
#define FAIRCLIQUE_GRAPH_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Synthetic graph generators. All are deterministic given the Rng seed and
/// produce attribute-less graphs (every vertex kA); combine with the
/// Assign*Attributes functions below. They are the substitution for the
/// paper's six downloaded datasets (see DESIGN.md §3).

/// G(n, p): every pair independently an edge with probability p. Uses
/// geometric skipping, O(n + m) expected.
AttributedGraph ErdosRenyi(VertexId n, double p, Rng& rng);

/// G(n, m): exactly m distinct edges sampled uniformly (m capped at C(n,2)).
AttributedGraph GnM(VertexId n, uint64_t m, Rng& rng);

/// Chung-Lu model with power-law expected degrees: weight of vertex i is
/// proportional to (i + i0)^(-1/(exponent-1)), scaled so the expected average
/// degree is `avg_degree`. Produces heavy-tailed degree distributions like
/// the paper's social networks (Themarker, Flixster, Pokec).
AttributedGraph ChungLuPowerLaw(VertexId n, double avg_degree, double exponent,
                                Rng& rng);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices. Web-like (Google stand-in).
AttributedGraph BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, Rng& rng);

/// Options for overlapping planted cliques on top of a sparse background.
/// Collaboration-network stand-in (DBLP/Aminer): many small near-cliques with
/// occasional large ones.
struct PlantedCliqueOptions {
  VertexId num_vertices = 1000;
  double background_edge_prob = 0.002;
  uint32_t num_cliques = 60;
  uint32_t min_clique_size = 4;
  uint32_t max_clique_size = 12;
};
AttributedGraph PlantedCliqueGraph(const PlantedCliqueOptions& options,
                                   Rng& rng);

/// Adds all pairwise edges among `size` vertices chosen from g, returning the
/// rebuilt graph and the chosen member set. When
/// `balanced` is true the members are chosen to split evenly between the two
/// attributes (|#a - #b| <= 1), guaranteeing a relative fair clique of this
/// size for k <= floor(size/2) and any delta >= size % 2. Used by tests and
/// by the case-study examples to plant ground truth.
AttributedGraph PlantClique(const AttributedGraph& g, uint32_t size,
                            bool balanced, Rng& rng,
                            std::vector<VertexId>* members);

/// The 15-vertex example graph of the paper's Fig. 1 (vertices v1..v15 map to
/// ids 0..14). Wired to satisfy the paper's Examples 1-2: the maximum
/// (3,1)-relative fair clique has 7 vertices — the right 8-clique
/// {v7,v8,v10..v15} minus any one of v11..v15.
AttributedGraph PaperFigure1Graph();

/// Assigns each vertex attribute kA with probability `p_a`, independently
/// (the paper's procedure for non-attributed datasets).
AttributedGraph AssignAttributesBernoulli(const AttributedGraph& g, double p_a,
                                          Rng& rng);

/// Correlated (homophily) attribute model simulating real attributes such as
/// Aminer's gender field: seeds each connected region via a random walk so
/// that neighbors agree with probability `homophily`, and the overall
/// fraction of kA is approximately `frac_a`. Substitution for the real
/// attributed Aminer dataset (DESIGN.md §3).
AttributedGraph AssignAttributesHomophily(const AttributedGraph& g,
                                          double frac_a, double homophily,
                                          Rng& rng);

/// Uniformly samples `fraction` of the vertices and returns the induced
/// subgraph (scalability experiment, Fig. 9 "vary n").
AttributedGraph SampleVertices(const AttributedGraph& g, double fraction,
                               Rng& rng);

/// Uniformly samples `fraction` of the edges, keeping all vertices
/// (scalability experiment, Fig. 9 "vary m").
AttributedGraph SampleEdges(const AttributedGraph& g, double fraction,
                            Rng& rng);

/// Uniformly samples `count` distinct non-edges of g (normalized u < v, no
/// particular order). Rejection-sampled, so intended for sparse graphs;
/// `count` is capped at the number of non-edges. Used to drive dynamic-graph
/// update streams in benchmarks and tests.
std::vector<Edge> SampleNonEdges(const AttributedGraph& g, size_t count,
                                 Rng& rng);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_GENERATORS_H_
