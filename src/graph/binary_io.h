#ifndef FAIRCLIQUE_GRAPH_BINARY_IO_H_
#define FAIRCLIQUE_GRAPH_BINARY_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace fairclique {

/// Compact binary container for attributed graphs ("FCG1"): magic, counts,
/// the sorted edge array and the attribute bytes, each section preceded by
/// fixed-width little-endian lengths. Loads ~10x faster than text edge lists
/// and round-trips attributes in one file.
///
/// Layout:
///   bytes 0-3   magic "FCG1"
///   bytes 4-7   uint32 num_vertices
///   bytes 8-11  uint32 num_edges
///   then num_edges * (uint32 u, uint32 v) with u < v, sorted
///   then num_vertices * uint8 attribute (0 = a, 1 = b)
///
/// The write is atomic (tmp + fsync + rename): a failure never leaves a
/// partial file under `path`.
Status SaveBinaryGraph(const AttributedGraph& g, const std::string& path);

/// Loads an FCG1 file. Fails with Corruption on bad magic, section lengths
/// disagreeing with the header counts (truncation as well as trailing
/// garbage), out-of-range or non-normalized or unsorted edges, and
/// attribute bytes > 1. Corrupt input is rejected, never repaired.
Status LoadBinaryGraph(const std::string& path, AttributedGraph* out);

/// Loads a METIS-format graph (one header line "n m [fmt]", then one line
/// per vertex listing its 1-based neighbors). Vertex attributes default to
/// kA. Tolerates comment lines starting with '%'. Edge weights are not
/// supported (fmt must be 0 or absent).
Status LoadMetisGraph(const std::string& path, AttributedGraph* out);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_BINARY_IO_H_
