#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/logging.h"

namespace fairclique {

bool AttributedGraph::HasEdge(VertexId u, VertexId v) const {
  return FindEdge(u, v) != kInvalidEdge;
}

EdgeId AttributedGraph::FindEdge(VertexId u, VertexId v) const {
  if (u == v) return kInvalidEdge;
  // Search the shorter adjacency row.
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nbrs = neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return edge_ids(u)[static_cast<size_t>(it - nbrs.begin())];
}

AttributedGraph AttributedGraph::InducedSubgraph(
    std::span<const VertexId> vertices,
    std::vector<VertexId>* original_ids) const {
  std::vector<VertexId> local(num_vertices(), kInvalidVertex);
  for (size_t i = 0; i < vertices.size(); ++i) {
    FC_CHECK(local[vertices[i]] == kInvalidVertex)
        << "duplicate vertex " << vertices[i] << " in InducedSubgraph";
    local[vertices[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(static_cast<VertexId>(vertices.size()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    builder.SetAttribute(static_cast<VertexId>(i), attribute(vertices[i]));
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    VertexId u = vertices[i];
    for (VertexId w : neighbors(u)) {
      // Emit each edge once, from the endpoint with the larger original id.
      if (w < u && local[w] != kInvalidVertex) {
        builder.AddEdge(static_cast<VertexId>(i), local[w]);
      }
    }
  }
  if (original_ids != nullptr) {
    original_ids->assign(vertices.begin(), vertices.end());
  }
  return builder.Build();
}

AttributedGraph AttributedGraph::FilteredSubgraph(
    std::span<const uint8_t> vertex_alive, std::span<const uint8_t> edge_alive,
    std::vector<VertexId>* original_ids) const {
  FC_CHECK(vertex_alive.size() == num_vertices());
  FC_CHECK(edge_alive.empty() || edge_alive.size() == num_edges());
  std::vector<VertexId> kept;
  kept.reserve(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (vertex_alive[v]) kept.push_back(v);
  }
  std::vector<VertexId> local(num_vertices(), kInvalidVertex);
  for (size_t i = 0; i < kept.size(); ++i) {
    local[kept[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(static_cast<VertexId>(kept.size()));
  for (size_t i = 0; i < kept.size(); ++i) {
    builder.SetAttribute(static_cast<VertexId>(i), attribute(kept[i]));
  }
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (!edge_alive.empty() && !edge_alive[e]) continue;
    const Edge& edge = edges_[e];
    if (vertex_alive[edge.u] && vertex_alive[edge.v]) {
      builder.AddEdge(local[edge.u], local[edge.v]);
    }
  }
  if (original_ids != nullptr) *original_ids = std::move(kept);
  return builder.Build();
}

std::vector<std::vector<VertexId>> AttributedGraph::ConnectedComponents()
    const {
  std::vector<std::vector<VertexId>> components;
  std::vector<uint8_t> visited(num_vertices(), 0);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < num_vertices(); ++s) {
    if (visited[s]) continue;
    std::vector<VertexId> component;
    stack.push_back(s);
    visited[s] = 1;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      component.push_back(v);
      for (VertexId w : neighbors(v)) {
        if (!visited[w]) {
          visited[w] = 1;
          stack.push_back(w);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

Status AttributedGraph::Validate() const {
  if (offsets_.empty()) {
    return Status::Corruption("graph has no offset array");
  }
  if (attributes_.size() != num_vertices()) {
    return Status::Corruption("attribute array size mismatch");
  }
  if (adjacency_.size() != 2 * static_cast<size_t>(num_edges())) {
    return Status::Corruption("adjacency size != 2 * num_edges");
  }
  for (VertexId v = 0; v < num_vertices(); ++v) {
    auto nbrs = neighbors(v);
    auto eids = edge_ids(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == v) {
        return Status::Corruption("self-loop at vertex " + std::to_string(v));
      }
      if (i > 0 && nbrs[i] <= nbrs[i - 1]) {
        return Status::Corruption("adjacency of vertex " + std::to_string(v) +
                                  " not strictly sorted");
      }
      const Edge& e = edges_[eids[i]];
      VertexId lo = std::min(v, nbrs[i]);
      VertexId hi = std::max(v, nbrs[i]);
      if (e.u != lo || e.v != hi) {
        return Status::Corruption("edge id wiring broken at vertex " +
                                  std::to_string(v));
      }
    }
  }
  for (EdgeId e = 0; e + 1 < num_edges(); ++e) {
    if (!(edges_[e] < edges_[e + 1])) {
      return Status::Corruption("edge list not strictly sorted");
    }
  }
  return Status::OK();
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices), attributes_(num_vertices, 0) {}

void GraphBuilder::SetAttribute(VertexId v, Attribute attr) {
  FC_CHECK(v < num_vertices_) << "SetAttribute: vertex out of range";
  attributes_[v] = static_cast<uint8_t>(attr);
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  FC_CHECK(u < num_vertices_ && v < num_vertices_)
      << "AddEdge: endpoint out of range (" << u << ", " << v << ")";
  if (u == v) return;  // Self-loops are silently dropped.
  if (u > v) std::swap(u, v);
  raw_edges_.push_back({u, v});
}

AttributedGraph GraphBuilder::Build() const {
  auto store = std::make_shared<AttributedGraph::OwnedCsr>();
  store->edges = raw_edges_;
  std::sort(store->edges.begin(), store->edges.end());
  store->edges.erase(std::unique(store->edges.begin(), store->edges.end()),
                     store->edges.end());
  store->attributes = attributes_;

  AttributedGraph g;
  g.attr_counts_ = AttrCounts{};
  for (uint8_t a : store->attributes) {
    g.attr_counts_[static_cast<Attribute>(a)]++;
  }

  const size_t n = num_vertices_;
  std::vector<uint32_t> deg(n, 0);
  for (const Edge& e : store->edges) {
    deg[e.u]++;
    deg[e.v]++;
  }
  store->offsets.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    store->offsets[v + 1] = store->offsets[v] + deg[v];
  }
  store->adjacency.resize(2 * store->edges.size());
  store->adjacency_edge_ids.resize(2 * store->edges.size());

  std::vector<uint64_t> cursor(store->offsets.begin(),
                               store->offsets.end() - 1);
  // Edges are sorted by (u, v); filling forward keeps every row sorted for
  // the u side. The v side receives u values in increasing u order, also
  // sorted.
  for (EdgeId e = 0; e < store->edges.size(); ++e) {
    const Edge& edge = store->edges[e];
    store->adjacency[cursor[edge.u]] = edge.v;
    store->adjacency_edge_ids[cursor[edge.u]] = e;
    cursor[edge.u]++;
    store->adjacency[cursor[edge.v]] = edge.u;
    store->adjacency_edge_ids[cursor[edge.v]] = e;
    cursor[edge.v]++;
  }
  // The v-side insertions interleave with u-side ones, so rows are not yet
  // globally sorted; sort each row (pairing neighbor with edge id).
  for (size_t v = 0; v < n; ++v) {
    uint64_t begin = store->offsets[v];
    uint64_t end = store->offsets[v + 1];
    // Sort a permutation to keep neighbor/edge-id arrays parallel.
    std::vector<std::pair<VertexId, EdgeId>> row;
    row.reserve(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      row.emplace_back(store->adjacency[i], store->adjacency_edge_ids[i]);
    }
    std::sort(row.begin(), row.end());
    for (uint64_t i = begin; i < end; ++i) {
      store->adjacency[i] = row[i - begin].first;
      store->adjacency_edge_ids[i] = row[i - begin].second;
    }
    g.max_degree_ = std::max(g.max_degree_, static_cast<uint32_t>(end - begin));
  }
  g.offsets_ = store->offsets;
  g.adjacency_ = store->adjacency;
  g.adjacency_edge_ids_ = store->adjacency_edge_ids;
  g.edges_ = store->edges;
  g.attributes_ = store->attributes;
  g.keeper_ = std::move(store);
  return g;
}

AttributedGraph AttributedGraph::FromCsr(
    std::span<const uint64_t> offsets, std::span<const VertexId> adjacency,
    std::span<const EdgeId> adjacency_edge_ids, std::span<const Edge> edges,
    std::span<const uint8_t> attributes, uint32_t max_degree,
    std::shared_ptr<const void> keeper) {
  FC_CHECK(!offsets.empty()) << "FromCsr: offsets must have size V+1 >= 1";
  FC_CHECK(offsets.size() == attributes.size() + 1)
      << "FromCsr: offsets/attributes size mismatch";
  FC_CHECK(adjacency.size() == 2 * edges.size())
      << "FromCsr: adjacency size != 2 * num_edges";
  FC_CHECK(adjacency_edge_ids.size() == adjacency.size())
      << "FromCsr: edge-id array not parallel to adjacency";
  FC_CHECK(offsets.front() == 0 && offsets.back() == adjacency.size())
      << "FromCsr: offsets do not span the adjacency array";
  AttributedGraph g;
  g.offsets_ = offsets;
  g.adjacency_ = adjacency;
  g.adjacency_edge_ids_ = adjacency_edge_ids;
  g.edges_ = edges;
  g.attributes_ = attributes;
  g.max_degree_ = max_degree;
  g.attr_counts_ = AttrCounts{};
  for (uint8_t a : attributes) g.attr_counts_[static_cast<Attribute>(a)]++;
  g.keeper_ = std::move(keeper);
  return g;
}

AttributedGraph BuildGraph(VertexId num_vertices,
                           std::span<const Edge> edge_list,
                           std::span<const Attribute> attributes) {
  FC_CHECK(attributes.size() == num_vertices);
  GraphBuilder builder(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    builder.SetAttribute(v, attributes[v]);
  }
  for (const Edge& e : edge_list) builder.AddEdge(e.u, e.v);
  return builder.Build();
}

}  // namespace fairclique
