#ifndef FAIRCLIQUE_GRAPH_GRAPH_H_
#define FAIRCLIQUE_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace fairclique {

/// An immutable, undirected, vertex-attributed graph in CSR (compressed
/// sparse row) form.
///
/// Invariants (established by GraphBuilder and preserved by all views):
///  - no self-loops, no parallel edges;
///  - every adjacency list is sorted by neighbor id (enables O(deg_min)
///    common-neighbor intersection, the workhorse of the support reductions);
///  - `edges()` lists each undirected edge exactly once with u < v, sorted;
///  - `edge_ids(u)[i]` is the EdgeId of the edge {u, neighbors(u)[i]}, so
///    edge-indexed algorithms (truss-style peeling) can walk CSR rows and
///    address per-edge state in O(1).
///
/// The CSR arrays live behind spans into a shared, immutable backing store:
/// either arrays built by GraphBuilder, or an mmap'd FCG2 snapshot adopted
/// via FromCsr (storage/fcg2.h) — the algorithms never see the difference.
/// Copying a graph shares the backing store, so copies are O(1).
class AttributedGraph {
 public:
  AttributedGraph() = default;

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Sorted neighbor list of `v`.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Edge ids parallel to neighbors(v).
  std::span<const EdgeId> edge_ids(VertexId v) const {
    return {adjacency_edge_ids_.data() + offsets_[v],
            adjacency_edge_ids_.data() + offsets_[v + 1]};
  }

  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Maximum vertex degree (0 for an empty graph).
  uint32_t max_degree() const { return max_degree_; }

  Attribute attribute(VertexId v) const {
    return static_cast<Attribute>(attributes_[v]);
  }

  /// Number of vertices per attribute over the whole graph.
  AttrCounts attribute_counts() const { return attr_counts_; }

  /// The undirected edge list; edges()[e] has u < v and the list is sorted.
  std::span<const Edge> edges() const { return edges_; }

  /// Raw CSR views, exposed for serialization (storage/fcg2.h writes them
  /// byte-for-byte). Same data the span accessors above slice per vertex.
  std::span<const uint64_t> csr_offsets() const { return offsets_; }
  std::span<const VertexId> csr_adjacency() const { return adjacency_; }
  std::span<const EdgeId> csr_edge_ids() const { return adjacency_edge_ids_; }
  std::span<const uint8_t> attribute_bytes() const { return attributes_; }

  /// Adopts prebuilt CSR arrays without copying or re-normalizing: the spans
  /// must satisfy every invariant documented above and stay valid for as
  /// long as `keeper` is alive (the graph retains it — typically an mmap'd
  /// file). Basic shape consistency is FC_CHECKed; content validation is the
  /// caller's job (the FCG2 loader verifies per-section checksums instead of
  /// re-deriving the arrays, which is what makes mmap loads cheap).
  static AttributedGraph FromCsr(std::span<const uint64_t> offsets,
                                 std::span<const VertexId> adjacency,
                                 std::span<const EdgeId> adjacency_edge_ids,
                                 std::span<const Edge> edges,
                                 std::span<const uint8_t> attributes,
                                 uint32_t max_degree,
                                 std::shared_ptr<const void> keeper);

  /// True if {u, v} is an edge. O(log(min deg)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// EdgeId of {u, v}, or kInvalidEdge when not adjacent. O(log(min deg)).
  EdgeId FindEdge(VertexId u, VertexId v) const;

  /// Extracts the subgraph induced by `vertices` (need not be sorted;
  /// duplicates are an error). Vertex i of the result corresponds to
  /// vertices[i] of this graph; the mapping back is returned through
  /// `original_ids` when non-null.
  AttributedGraph InducedSubgraph(std::span<const VertexId> vertices,
                                  std::vector<VertexId>* original_ids = nullptr) const;

  /// Extracts the subgraph on the vertices with alive[v] == true, dropping
  /// additionally every edge with edge_alive[e] == false (pass an empty span
  /// to keep all surviving-endpoint edges). Used to materialize reduction
  /// results.
  AttributedGraph FilteredSubgraph(std::span<const uint8_t> vertex_alive,
                                   std::span<const uint8_t> edge_alive,
                                   std::vector<VertexId>* original_ids = nullptr) const;

  /// Splits the graph into connected components; each entry is the vertex set
  /// of one component (sorted, in discovery order of the lowest vertex).
  std::vector<std::vector<VertexId>> ConnectedComponents() const;

  /// Internal consistency check (sorted adjacency, symmetric edges, edge id
  /// wiring). Intended for tests; O(V + E log E).
  Status Validate() const;

 private:
  friend class GraphBuilder;

  /// Arrays owned by graphs built in memory; FromCsr graphs view foreign
  /// memory (their keeper_) and leave this null.
  struct OwnedCsr {
    std::vector<uint64_t> offsets;            // size V+1
    std::vector<VertexId> adjacency;          // size 2E, sorted per row
    std::vector<EdgeId> adjacency_edge_ids;   // parallel to adjacency
    std::vector<Edge> edges;                  // size E, u < v, sorted
    std::vector<uint8_t> attributes;          // size V
  };

  /// Keeps the bytes behind the spans alive: an OwnedCsr or an arbitrary
  /// holder (mmap'd file). Shared between copies — the store is immutable.
  std::shared_ptr<const void> keeper_;
  std::span<const uint64_t> offsets_;
  std::span<const VertexId> adjacency_;
  std::span<const EdgeId> adjacency_edge_ids_;
  std::span<const Edge> edges_;
  std::span<const uint8_t> attributes_;
  AttrCounts attr_counts_;
  uint32_t max_degree_ = 0;
};

/// Accumulates edges and attributes, then produces a normalized
/// AttributedGraph: self-loops dropped, duplicate edges collapsed, adjacency
/// sorted, edge ids assigned.
class GraphBuilder {
 public:
  /// Creates a builder for `num_vertices` vertices, all with attribute kA.
  explicit GraphBuilder(VertexId num_vertices);

  VertexId num_vertices() const { return num_vertices_; }

  /// Sets the attribute of vertex `v`.
  void SetAttribute(VertexId v, Attribute attr);

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are tolerated
  /// and normalized away at Build() time. Ids must be < num_vertices.
  void AddEdge(VertexId u, VertexId v);

  /// Number of raw (pre-normalization) edge insertions so far.
  size_t raw_edge_count() const { return raw_edges_.size(); }

  /// Builds the normalized immutable graph. The builder may be reused
  /// afterwards (its state is unchanged).
  AttributedGraph Build() const;

 private:
  VertexId num_vertices_;
  std::vector<Edge> raw_edges_;
  std::vector<uint8_t> attributes_;
};

/// Convenience: builds a graph from an explicit edge list and attribute
/// vector (attributes.size() == num_vertices).
AttributedGraph BuildGraph(VertexId num_vertices,
                           std::span<const Edge> edge_list,
                           std::span<const Attribute> attributes);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_GRAPH_H_
