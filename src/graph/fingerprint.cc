#include "graph/fingerprint.h"

#include <cstdio>

#include "graph/types.h"

namespace fairclique {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t MixByte(uint64_t h, uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

inline uint64_t Mix32(uint64_t h, uint32_t value) {
  h = MixByte(h, static_cast<uint8_t>(value));
  h = MixByte(h, static_cast<uint8_t>(value >> 8));
  h = MixByte(h, static_cast<uint8_t>(value >> 16));
  h = MixByte(h, static_cast<uint8_t>(value >> 24));
  return h;
}

}  // namespace

uint64_t GraphFingerprint(const AttributedGraph& g) {
  uint64_t h = kFnvOffset;
  h = Mix32(h, static_cast<uint32_t>(g.num_vertices()));
  h = Mix32(h, static_cast<uint32_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    h = Mix32(h, e.u);
    h = Mix32(h, e.v);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    h = MixByte(h, static_cast<uint8_t>(g.attribute(v)));
  }
  return h;
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

}  // namespace fairclique
