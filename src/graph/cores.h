#ifndef FAIRCLIQUE_GRAPH_CORES_H_
#define FAIRCLIQUE_GRAPH_CORES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Result of k-core decomposition by bucket peeling.
struct CoreDecomposition {
  /// core[v]: largest k such that v belongs to the k-core.
  std::vector<uint32_t> core;
  /// Vertices in peeling order (non-decreasing core number).
  std::vector<VertexId> peel_order;
  /// position[v]: index of v in peel_order. The suffix of peel_order starting
  /// at v, restricted to v's neighbors, has size >= core[v] (degeneracy
  /// ordering property).
  std::vector<uint32_t> position;
  /// Graph degeneracy = max core number (0 for an empty graph).
  uint32_t degeneracy = 0;
};

/// O(V + E) bucket-based core decomposition (Matula-Beck / Batagelj-Zaversnik).
CoreDecomposition ComputeCores(const AttributedGraph& g);

/// Alive-flags (1/0 per vertex) of the maximal subgraph with minimum degree
/// >= k. Equivalent to `ComputeCores(g).core[v] >= k` but cheaper when only
/// one threshold is needed.
std::vector<uint8_t> KCoreAliveFlags(const AttributedGraph& g, uint32_t k);

/// The graph h-index (Lemma 11 substrate): the largest h such that at least
/// h vertices have degree >= h. O(V).
uint32_t GraphHIndex(const AttributedGraph& g);

/// Generic h-index of a value sequence: largest h with >= h entries >= h.
uint32_t HIndexOfValues(const std::vector<int64_t>& values);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_CORES_H_
