#ifndef FAIRCLIQUE_GRAPH_TYPES_H_
#define FAIRCLIQUE_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace fairclique {

/// Vertex identifier. Graphs are limited to < 2^32 vertices, matching the
/// paper's evaluation scale (largest dataset: 2.5M vertices).
using VertexId = uint32_t;

/// Edge identifier, indexing the undirected edge array of a graph.
using EdgeId = uint32_t;

/// Color identifier assigned by greedy coloring; colors are dense in
/// [0, num_colors).
using ColorId = int32_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// Binary vertex attribute. The paper (and this library) studies the
/// two-dimensional attribute setting A = {a, b}; e.g. gender in Aminer,
/// research area in DBAI, nationality in NBA.
enum class Attribute : uint8_t {
  kA = 0,
  kB = 1,
};

/// The attribute different from `x`.
inline Attribute Other(Attribute x) {
  return x == Attribute::kA ? Attribute::kB : Attribute::kA;
}

/// Array index of an attribute (kA -> 0, kB -> 1).
inline int AttrIndex(Attribute x) { return static_cast<int>(x); }

/// A pair of per-attribute counters, indexed by Attribute. Used for
/// cnt_S(a)/cnt_S(b), colorful degrees, color-group sizes, etc.
struct AttrCounts {
  int64_t counts[2] = {0, 0};

  int64_t& operator[](Attribute x) { return counts[AttrIndex(x)]; }
  int64_t operator[](Attribute x) const { return counts[AttrIndex(x)]; }

  int64_t a() const { return counts[0]; }
  int64_t b() const { return counts[1]; }
  int64_t Total() const { return counts[0] + counts[1]; }
  int64_t Min() const { return counts[0] < counts[1] ? counts[0] : counts[1]; }
  int64_t Max() const { return counts[0] > counts[1] ? counts[0] : counts[1]; }
  int64_t Diff() const {
    int64_t d = counts[0] - counts[1];
    return d < 0 ? -d : d;
  }

  bool operator==(const AttrCounts& o) const {
    return counts[0] == o.counts[0] && counts[1] == o.counts[1];
  }
};

/// An undirected edge as an unordered pair (stored with u < v).
struct Edge {
  VertexId u;
  VertexId v;

  bool operator==(const Edge& o) const { return u == o.u && v == o.v; }
  bool operator<(const Edge& o) const {
    return u != o.u ? u < o.u : v < o.v;
  }
};

/// Fairness parameters of the relative fair clique model (Definition 1):
/// each attribute must appear at least `k` times and the attribute counts
/// may differ by at most `delta`.
struct FairnessParams {
  int k = 1;
  int delta = 0;

  /// True when a vertex multiset with the given per-attribute counts
  /// satisfies fairness condition (i) of Definition 1.
  bool Satisfied(const AttrCounts& cnt) const {
    return cnt.a() >= k && cnt.b() >= k && cnt.Diff() <= delta;
  }

  /// The best (largest) total size achievable by choosing p <= avail.a()
  /// vertices of attribute a and q <= avail.b() of b subject to fairness;
  /// 0 if infeasible. Because every subset of a clique is a clique, this is
  /// exactly the best fair sub-clique size inside a clique with the given
  /// attribute counts.
  int64_t BestFairSubsetSize(const AttrCounts& avail) const {
    if (avail.a() < k || avail.b() < k) return 0;
    int64_t total = avail.Total();
    int64_t balanced = 2 * avail.Min() + delta;
    return total < balanced ? total : balanced;
  }
};

/// A vertex set representing a (candidate) clique, plus cached attribute
/// counts.
struct CliqueResult {
  std::vector<VertexId> vertices;
  AttrCounts attr_counts;

  size_t size() const { return vertices.size(); }
  bool empty() const { return vertices.empty(); }
};

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_TYPES_H_
