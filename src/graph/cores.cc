#include "graph/cores.h"

#include <algorithm>

namespace fairclique {

CoreDecomposition ComputeCores(const AttributedGraph& g) {
  const VertexId n = g.num_vertices();
  CoreDecomposition result;
  result.core.assign(n, 0);
  result.peel_order.reserve(n);
  result.position.assign(n, 0);
  if (n == 0) return result;

  // Bucket sort vertices by degree.
  const uint32_t dmax = g.max_degree();
  std::vector<uint32_t> deg(n);
  std::vector<uint32_t> bucket_start(dmax + 2, 0);
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    bucket_start[deg[v] + 1]++;
  }
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  // vert: vertices sorted by current degree; pos: inverse permutation;
  // bucket_cursor[d]: start of bucket d within vert.
  std::vector<VertexId> vert(n);
  std::vector<uint32_t> pos(n);
  std::vector<uint32_t> bucket_cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
  {
    std::vector<uint32_t> cursor = bucket_cursor;
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      vert[pos[v]] = v;
    }
  }

  uint32_t degeneracy = 0;
  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = vert[i];
    degeneracy = std::max(degeneracy, deg[v]);
    result.core[v] = degeneracy;
    result.peel_order.push_back(v);
    result.position[v] = i;
    for (VertexId w : g.neighbors(v)) {
      if (deg[w] > deg[v]) {
        // Move w one bucket down: swap it with the first vertex of its
        // bucket, then advance that bucket's start.
        uint32_t dw = deg[w];
        uint32_t pw = pos[w];
        uint32_t pfirst = bucket_cursor[dw];
        VertexId first = vert[pfirst];
        if (w != first) {
          std::swap(vert[pw], vert[pfirst]);
          pos[w] = pfirst;
          pos[first] = pw;
        }
        bucket_cursor[dw]++;
        deg[w]--;
      }
    }
  }
  result.degeneracy = degeneracy;
  return result;
}

std::vector<uint8_t> KCoreAliveFlags(const AttributedGraph& g, uint32_t k) {
  const VertexId n = g.num_vertices();
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    if (deg[v] < k) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    for (VertexId w : g.neighbors(v)) {
      if (alive[w] && --deg[w] < k) {
        alive[w] = 0;
        queue.push_back(w);
      }
    }
  }
  return alive;
}

uint32_t GraphHIndex(const AttributedGraph& g) {
  std::vector<int64_t> degrees(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  return HIndexOfValues(degrees);
}

uint32_t HIndexOfValues(const std::vector<int64_t>& values) {
  // Counting approach: cnt[h] = number of entries with value >= h, capped at
  // n (h can never exceed n).
  const size_t n = values.size();
  std::vector<uint32_t> count(n + 1, 0);
  for (int64_t v : values) {
    if (v <= 0) continue;
    size_t capped = std::min<int64_t>(v, static_cast<int64_t>(n));
    count[capped]++;
  }
  uint32_t running = 0;
  for (size_t h = n; h > 0; --h) {
    running += count[h];
    if (running >= h) return static_cast<uint32_t>(h);
  }
  return 0;
}

}  // namespace fairclique
