#include "graph/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "storage/io_util.h"

namespace fairclique {

namespace {

constexpr char kMagic[4] = {'F', 'C', 'G', '1'};

void PutU32(std::string* buf, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff),
                   static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff),
                   static_cast<char>((v >> 24) & 0xff)};
  buf->append(bytes, 4);
}

bool GetU32(const std::string& buf, size_t* pos, uint32_t* out) {
  if (*pos + 4 > buf.size()) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf.data() + *pos);
  *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

}  // namespace

Status SaveBinaryGraph(const AttributedGraph& g, const std::string& path) {
  std::string buf;
  buf.reserve(12 + 8ull * g.num_edges() + g.num_vertices());
  buf.append(kMagic, 4);
  PutU32(&buf, g.num_vertices());
  PutU32(&buf, g.num_edges());
  for (const Edge& e : g.edges()) {
    PutU32(&buf, e.u);
    PutU32(&buf, e.v);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    buf.push_back(static_cast<char>(AttrIndex(g.attribute(v))));
  }
  // Atomic publish (tmp + fsync + rename): a failed or interrupted save
  // never leaves a partial file under `path` for a later load to trip on,
  // and short writes surface as an error instead of vanishing into an
  // unchecked stream destructor.
  return storage::AtomicWriteFile(path, buf);
}

Status LoadBinaryGraph(const std::string& path, AttributedGraph* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string buf = ss.str();

  if (buf.size() < 12 || std::memcmp(buf.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  size_t pos = 4;
  uint32_t n = 0, m = 0;
  if (!GetU32(buf, &pos, &n) || !GetU32(buf, &pos, &m)) {
    return Status::Corruption("truncated header in " + path);
  }
  // The header counts dictate the exact section lengths (8m edge bytes, n
  // attribute bytes); a file longer than that carries trailing garbage and
  // a shorter one is truncated — both are rejected, never "repaired".
  const size_t expected = 12 + 8ull * m + n;
  if (buf.size() < expected) {
    return Status::Corruption(
        "truncated sections in " + path + ": have " +
        std::to_string(buf.size()) + " bytes, header counts require " +
        std::to_string(expected));
  }
  if (buf.size() > expected) {
    return Status::Corruption(
        "trailing garbage in " + path + ": " +
        std::to_string(buf.size() - expected) + " bytes past the " +
        std::to_string(expected) + " the header counts require");
  }
  GraphBuilder builder(n);
  Edge prev{0, 0};
  for (uint32_t e = 0; e < m; ++e) {
    uint32_t u = 0, v = 0;
    GetU32(buf, &pos, &u);
    GetU32(buf, &pos, &v);
    if (u >= n || v >= n) {
      return Status::Corruption("edge endpoint out of range in " + path);
    }
    // The format stores each undirected edge exactly once, normalized and
    // sorted; accepting violations would let GraphBuilder silently collapse
    // corrupt data into a different (validly-shaped) graph.
    if (u >= v) {
      return Status::Corruption("edge not normalized (u >= v) in " + path);
    }
    Edge cur{u, v};
    if (e > 0 && !(prev < cur)) {
      return Status::Corruption("edge list not strictly sorted in " + path);
    }
    prev = cur;
    builder.AddEdge(u, v);
  }
  for (uint32_t v = 0; v < n; ++v) {
    unsigned char a = static_cast<unsigned char>(buf[pos++]);
    if (a > 1) {
      return Status::Corruption("bad attribute byte in " + path);
    }
    builder.SetAttribute(v, static_cast<Attribute>(a));
  }
  *out = builder.Build();
  return Status::OK();
}

Status LoadMetisGraph(const std::string& path, AttributedGraph* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::string line;
  size_t line_no = 0;
  // Header.
  uint64_t n = 0, m = 0;
  int fmt = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream hs(line);
    if (!(hs >> n >> m)) {
      return Status::InvalidArgument("bad METIS header at " + path + ":" +
                                     std::to_string(line_no));
    }
    if (hs >> fmt && fmt != 0) {
      return Status::InvalidArgument("weighted METIS graphs not supported (" +
                                     path + ")");
    }
    break;
  }
  GraphBuilder builder(static_cast<VertexId>(n));
  uint64_t vertex = 0;
  while (vertex < n && std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t nbr;
    while (ls >> nbr) {
      if (nbr < 1 || nbr > n) {
        return Status::OutOfRange("METIS neighbor id " + std::to_string(nbr) +
                                  " out of [1, n] at " + path + ":" +
                                  std::to_string(line_no));
      }
      builder.AddEdge(static_cast<VertexId>(vertex),
                      static_cast<VertexId>(nbr - 1));
    }
    if (!ls.eof()) {
      return Status::InvalidArgument("non-numeric METIS token at " + path +
                                     ":" + std::to_string(line_no));
    }
    ++vertex;
  }
  if (vertex != n) {
    return Status::Corruption("METIS file ended after " +
                              std::to_string(vertex) + " of " +
                              std::to_string(n) + " vertex lines (" + path +
                              ")");
  }
  AttributedGraph g = builder.Build();
  if (g.num_edges() != m) {
    // METIS counts each undirected edge once; tolerate mismatches caused by
    // duplicate listings but flag truly inconsistent headers.
    if (g.num_edges() > m) {
      return Status::Corruption("METIS header declares " + std::to_string(m) +
                                " edges but file contains " +
                                std::to_string(g.num_edges()) + " (" + path +
                                ")");
    }
  }
  *out = std::move(g);
  return Status::OK();
}

}  // namespace fairclique
