#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/logging.h"

namespace fairclique {

AttributedGraph ErdosRenyi(VertexId n, double p, Rng& rng) {
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.Build();
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
    }
    return builder.Build();
  }
  // Geometric skipping over the linearized strict upper triangle: the gap
  // between consecutive edges is geometric with parameter p, so skip
  // floor(log(1-r)/log(1-p)) candidates before each emission.
  const double log_q = std::log1p(-p);
  uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t idx = 0;
  while (true) {
    double r = rng.NextDouble();
    double skip = std::floor(std::log1p(-r) / log_q);
    if (skip > static_cast<double>(total)) break;
    idx += static_cast<uint64_t>(skip);
    if (idx >= total) break;
    // Unrank idx -> (u, v) in the upper triangle.
    // Row u starts at offset u*n - u*(u+1)/2 - u ... use incremental search
    // via the quadratic formula for robustness.
    double nn = static_cast<double>(n);
    double ui = nn - 0.5 -
                std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 * static_cast<double>(idx));
    VertexId u = static_cast<VertexId>(ui);
    // Fix up floating point error.
    auto row_start = [n](VertexId row) {
      return static_cast<uint64_t>(row) * n - static_cast<uint64_t>(row) * (row + 1) / 2;
    };
    while (u + 1 < n && row_start(u + 1) <= idx) ++u;
    while (u > 0 && row_start(u) > idx) --u;
    VertexId v = static_cast<VertexId>(u + 1 + (idx - row_start(u)));
    builder.AddEdge(u, v);
    ++idx;
  }
  return builder.Build();
}

AttributedGraph GnM(VertexId n, uint64_t m, Rng& rng) {
  GraphBuilder builder(n);
  if (n < 2) return builder.Build();
  uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, total);
  std::vector<uint64_t> picks = rng.SampleDistinct(total, m);
  auto row_start = [n](VertexId row) {
    return static_cast<uint64_t>(row) * n -
           static_cast<uint64_t>(row) * (row + 1) / 2;
  };
  for (uint64_t idx : picks) {
    double nn = static_cast<double>(n);
    double ui = nn - 0.5 -
                std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 * static_cast<double>(idx));
    VertexId u = static_cast<VertexId>(std::max(0.0, ui));
    while (u + 1 < n && row_start(u + 1) <= idx) ++u;
    while (u > 0 && row_start(u) > idx) --u;
    VertexId v = static_cast<VertexId>(u + 1 + (idx - row_start(u)));
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

AttributedGraph ChungLuPowerLaw(VertexId n, double avg_degree, double exponent,
                                Rng& rng) {
  GraphBuilder builder(n);
  if (n < 2 || avg_degree <= 0.0) return builder.Build();
  FC_CHECK(exponent > 2.0) << "Chung-Lu requires exponent > 2";
  // Expected degree sequence w_i ~ (i + i0)^(-1/(exponent-1)), rescaled to
  // average avg_degree.
  const double alpha = 1.0 / (exponent - 1.0);
  std::vector<double> w(n);
  double sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, -alpha);
    sum += w[i];
  }
  const double scale = avg_degree * n / sum;
  double wsum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    w[i] *= scale;
    // Cap weights at sqrt(W) to keep probabilities <= 1 later.
    wsum += w[i];
  }
  const double cap = std::sqrt(wsum);
  for (VertexId i = 0; i < n; ++i) w[i] = std::min(w[i], cap);
  wsum = std::accumulate(w.begin(), w.end(), 0.0);

  // Efficient Chung-Lu sampling (Miller-Hagberg): vertices sorted by weight
  // descending (already true by construction), skip-sample per row.
  for (VertexId u = 0; u + 1 < n; ++u) {
    double p = std::min(1.0, w[u] * w[u + 1] / wsum);
    VertexId v = u + 1;
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        double r = rng.NextDouble();
        double skip = std::floor(std::log(1.0 - r) / std::log1p(-p));
        if (skip >= static_cast<double>(n - v)) break;
        v += static_cast<VertexId>(skip);
      }
      if (v >= n) break;
      double q = std::min(1.0, w[u] * w[v] / wsum);
      if (rng.NextDouble() < q / p) {
        builder.AddEdge(u, v);
      }
      p = q;
      ++v;
    }
  }
  return builder.Build();
}

AttributedGraph BarabasiAlbert(VertexId n, uint32_t edges_per_vertex,
                               Rng& rng) {
  GraphBuilder builder(n);
  if (n < 2) return builder.Build();
  const uint32_t m = std::max(1u, edges_per_vertex);
  // Repeated-endpoint list: sampling a uniform element of `targets` is
  // sampling proportionally to degree.
  std::vector<VertexId> targets;
  targets.reserve(2ull * m * n);
  // Seed: a small clique on min(m+1, n) vertices.
  VertexId seed = std::min<VertexId>(m + 1, n);
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (VertexId v = seed; v < n; ++v) {
    std::vector<VertexId> chosen;
    chosen.reserve(m);
    // Rejection: resample duplicates; degree-proportional via targets list.
    uint32_t guard = 0;
    while (chosen.size() < m && guard < 16 * m + 64) {
      ++guard;
      VertexId t = targets[rng.NextBounded(targets.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      builder.AddEdge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return builder.Build();
}

AttributedGraph PlantedCliqueGraph(const PlantedCliqueOptions& options,
                                   Rng& rng) {
  AttributedGraph base =
      ErdosRenyi(options.num_vertices, options.background_edge_prob, rng);
  GraphBuilder builder(options.num_vertices);
  for (const Edge& e : base.edges()) builder.AddEdge(e.u, e.v);
  for (uint32_t c = 0; c < options.num_cliques; ++c) {
    uint32_t size = static_cast<uint32_t>(rng.NextInRange(
        options.min_clique_size, options.max_clique_size));
    size = std::min<uint32_t>(size, options.num_vertices);
    std::vector<uint64_t> picked =
        rng.SampleDistinct(options.num_vertices, size);
    for (size_t i = 0; i < picked.size(); ++i) {
      for (size_t j = i + 1; j < picked.size(); ++j) {
        builder.AddEdge(static_cast<VertexId>(picked[i]),
                        static_cast<VertexId>(picked[j]));
      }
    }
  }
  return builder.Build();
}

AttributedGraph PlantClique(const AttributedGraph& g, uint32_t size,
                            bool balanced, Rng& rng,
                            std::vector<VertexId>* members) {
  FC_CHECK(size <= g.num_vertices())
      << "cannot plant a clique larger than the graph";
  std::vector<VertexId> chosen;
  if (!balanced) {
    for (uint64_t x : rng.SampleDistinct(g.num_vertices(), size)) {
      chosen.push_back(static_cast<VertexId>(x));
    }
  } else {
    // Pick ceil(size/2) from one attribute and floor(size/2) from the other,
    // falling back to arbitrary vertices if an attribute class is too small.
    std::vector<VertexId> pool[2];
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      pool[AttrIndex(g.attribute(v))].push_back(v);
    }
    uint32_t want_a = (size + 1) / 2;
    uint32_t want_b = size / 2;
    if (pool[0].size() < want_a || pool[1].size() < want_b) {
      std::swap(want_a, want_b);
    }
    FC_CHECK(pool[0].size() >= want_a && pool[1].size() >= want_b)
        << "graph lacks enough vertices per attribute for a balanced clique";
    rng.Shuffle(pool[0]);
    rng.Shuffle(pool[1]);
    chosen.assign(pool[0].begin(), pool[0].begin() + want_a);
    chosen.insert(chosen.end(), pool[1].begin(), pool[1].begin() + want_b);
  }
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    builder.SetAttribute(v, g.attribute(v));
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
  for (size_t i = 0; i < chosen.size(); ++i) {
    for (size_t j = i + 1; j < chosen.size(); ++j) {
      builder.AddEdge(chosen[i], chosen[j]);
    }
  }
  if (members != nullptr) {
    std::sort(chosen.begin(), chosen.end());
    *members = std::move(chosen);
  }
  return builder.Build();
}

AttributedGraph PaperFigure1Graph() {
  // Vertices v1..v15 -> ids 0..14. Attributes chosen to satisfy the paper's
  // Examples 1 and 2: the left community has A(v2)=A(v9)=b and v1,v3..v6 = a
  // (Example 2: common neighbors of (v2,v5) are v1,v6 with a and v9 with b);
  // the right 8-clique {v7,v8,v10..v15} splits 3 a's (v7,v8,v10) vs 5 b's
  // (v11..v15), so with k=3, delta=1 the maximum fair clique is the 8-clique
  // minus any one of v11..v15 (Example 1).
  GraphBuilder builder(15);
  auto set = [&builder](int paper_id, Attribute attr) {
    builder.SetAttribute(static_cast<VertexId>(paper_id - 1), attr);
  };
  for (int v : {1, 3, 4, 5, 6, 7, 8, 10}) set(v, Attribute::kA);
  for (int v : {2, 9, 11, 12, 13, 14, 15}) set(v, Attribute::kB);
  auto edge = [&builder](int pu, int pv) {
    builder.AddEdge(static_cast<VertexId>(pu - 1),
                    static_cast<VertexId>(pv - 1));
  };
  // Left community around v1..v6, v9 (wired so that G is a colorful 2-core
  // as discussed in Example 2: every vertex sees >= 2 colors per attribute).
  edge(1, 2); edge(1, 3); edge(1, 4); edge(1, 5); edge(1, 9);
  edge(2, 3); edge(2, 5); edge(2, 6); edge(2, 9);
  edge(3, 4); edge(3, 9);
  edge(4, 5); edge(4, 9);
  edge(5, 6); edge(5, 9);
  edge(6, 9); edge(6, 1);
  // Bridge vertices v7, v8 connect to the dense right community.
  edge(7, 8); edge(7, 9); edge(8, 9);
  // Right community: {v7, v8, v10..v15} forms an 8-clique; its best fair
  // sub-clique for k=3, delta=1 has 7 vertices, matching Example 1.
  int right[] = {7, 8, 10, 11, 12, 13, 14, 15};
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = i + 1; j < 8; ++j) edge(right[i], right[j]);
  }
  return builder.Build();
}

AttributedGraph AssignAttributesBernoulli(const AttributedGraph& g, double p_a,
                                          Rng& rng) {
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    builder.SetAttribute(v,
                         rng.NextBool(p_a) ? Attribute::kA : Attribute::kB);
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
  return builder.Build();
}

AttributedGraph AssignAttributesHomophily(const AttributedGraph& g,
                                          double frac_a, double homophily,
                                          Rng& rng) {
  const VertexId n = g.num_vertices();
  // Seed labels independently from the global prior, then raise edge-level
  // agreement by count-preserving label swaps: repeatedly pick two vertices
  // with different labels and exchange them when that increases the number
  // of same-attribute edges. This reproduces the assortative structure real
  // attributes (e.g. gender in collaboration networks) exhibit, with the
  // global mix pinned exactly at the seeded fraction — unlike majority
  // dynamics, which drifts toward consensus on dense graphs. The `homophily`
  // knob scales the optimization effort (0 = independent labels, 1 = a
  // thorough pass of ~40 swap attempts per vertex).
  std::vector<int> attr(n);
  for (VertexId v = 0; v < n; ++v) attr[v] = rng.NextBool(frac_a) ? 0 : 1;
  if (n >= 2 && homophily > 0.0) {
    auto local_agreement = [&](VertexId x) {
      int64_t c = 0;
      for (VertexId w : g.neighbors(x)) c += attr[w] == attr[x] ? 1 : 0;
      return c;
    };
    const uint64_t attempts = static_cast<uint64_t>(
        homophily * 40.0 * static_cast<double>(n));
    for (uint64_t i = 0; i < attempts; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (attr[u] == attr[v]) continue;
      int64_t before = local_agreement(u) + local_agreement(v);
      std::swap(attr[u], attr[v]);
      int64_t after = local_agreement(u) + local_agreement(v);
      if (after < before) std::swap(attr[u], attr[v]);  // Revert.
    }
  }
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    builder.SetAttribute(v, static_cast<Attribute>(attr[v]));
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
  return builder.Build();
}

AttributedGraph SampleVertices(const AttributedGraph& g, double fraction,
                               Rng& rng) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  uint64_t keep = static_cast<uint64_t>(
      std::llround(fraction * static_cast<double>(g.num_vertices())));
  std::vector<uint64_t> picked = rng.SampleDistinct(g.num_vertices(), keep);
  std::vector<VertexId> verts(picked.begin(), picked.end());
  std::sort(verts.begin(), verts.end());
  return g.InducedSubgraph(verts);
}

AttributedGraph SampleEdges(const AttributedGraph& g, double fraction,
                            Rng& rng) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  uint64_t keep = static_cast<uint64_t>(
      std::llround(fraction * static_cast<double>(g.num_edges())));
  std::vector<uint64_t> picked = rng.SampleDistinct(g.num_edges(), keep);
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    builder.SetAttribute(v, g.attribute(v));
  }
  for (uint64_t e : picked) {
    const Edge& edge = g.edges()[e];
    builder.AddEdge(edge.u, edge.v);
  }
  return builder.Build();
}

std::vector<Edge> SampleNonEdges(const AttributedGraph& g, size_t count,
                                 Rng& rng) {
  const VertexId n = g.num_vertices();
  uint64_t pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t non_edges = pairs > g.num_edges() ? pairs - g.num_edges() : 0;
  if (count > non_edges) count = static_cast<size_t>(non_edges);

  std::set<Edge> chosen;
  std::vector<Edge> out;
  out.reserve(count);
  while (out.size() < count) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    Edge e = u < v ? Edge{u, v} : Edge{v, u};
    if (g.HasEdge(e.u, e.v) || !chosen.insert(e).second) continue;
    out.push_back(e);
  }
  return out;
}

}  // namespace fairclique
