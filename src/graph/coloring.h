#ifndef FAIRCLIQUE_GRAPH_COLORING_H_
#define FAIRCLIQUE_GRAPH_COLORING_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Vertex orderings for greedy coloring. The paper uses the degree-based
/// greedy coloring ("color all vertices with a degree-based greedy coloring
/// algorithm", Alg. 1 line 1); the degeneracy ordering often yields fewer
/// colors and is provided for ablation.
enum class ColoringOrder {
  kDegreeDescending,  // Welsh-Powell: color high-degree vertices first.
  kDegeneracy,        // Smallest-last (reverse degeneracy) ordering.
  kNatural,           // Vertex id order; baseline.
};

/// Result of a proper vertex coloring: colors are dense in [0, num_colors).
struct Coloring {
  std::vector<ColorId> color;  // size V
  int num_colors = 0;

  ColorId operator[](VertexId v) const { return color[v]; }
};

/// Greedy proper coloring: visit vertices in the chosen order, assign the
/// smallest color absent from already-colored neighbors. Guarantees
/// num_colors <= max_degree + 1. O(V + E) for kNatural/kDegreeDescending
/// (counting sort on degree) and O(V + E) for kDegeneracy.
Coloring GreedyColoring(const AttributedGraph& g,
                        ColoringOrder order = ColoringOrder::kDegreeDescending);

/// True when `coloring` is proper for `g` (no edge joins equal colors) and
/// colors are within [0, num_colors).
bool IsProperColoring(const AttributedGraph& g, const Coloring& coloring);

/// Per-vertex colorful degrees (Definition 2): D_a(u) is the number of
/// distinct colors among u's neighbors with attribute a; likewise D_b.
/// Returned as a V-sized vector of AttrCounts.
std::vector<AttrCounts> ColorfulDegrees(const AttributedGraph& g,
                                        const Coloring& coloring);

/// Enhanced colorful degree (Definition 4) for every vertex: partition the
/// colors of u's neighborhood into a-only / b-only / mixed classes of sizes
/// (ca, cb, cm) and return the best achievable min(#a-colors, #b-colors)
/// over assignments of mixed colors to attributes, i.e.
///   ED(u) = max_{0<=x<=cm} min(ca + x, cb + cm - x).
std::vector<int64_t> EnhancedColorfulDegrees(const AttributedGraph& g,
                                             const Coloring& coloring);

/// The balanced-assignment maximum used by the enhanced colorful degree and
/// several bounds: max over x in [0, cm] of min(ca + x, cb + cm - x).
inline int64_t BalancedAssignMin(int64_t ca, int64_t cb, int64_t cm) {
  int64_t lo = ca < cb ? ca : cb;
  int64_t hi = ca < cb ? cb : ca;
  if (lo + cm <= hi) return lo + cm;
  return (lo + hi + cm) / 2;
}

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_COLORING_H_
