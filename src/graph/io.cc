#include "graph/io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace fairclique {

namespace {

// Parses a non-negative integer token; returns false on any non-digit.
bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool IsCommentLine(const std::string& line, const std::string& prefixes) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return prefixes.find(c) != std::string::npos;
  }
  return true;  // Blank line: treat as skippable.
}

}  // namespace

Status LoadEdgeList(const std::string& path, const EdgeListOptions& options,
                    AttributedGraph* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open edge list file: " + path);
  }
  std::vector<Edge> raw;
  std::unordered_map<uint64_t, VertexId> remap;
  uint64_t max_id = 0;
  bool any_edge = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentLine(line, options.comment_prefixes)) continue;
    std::istringstream ls(line);
    std::string tu, tv;
    if (!(ls >> tu >> tv)) {
      return Status::InvalidArgument("malformed edge at " + path + ":" +
                                     std::to_string(line_no) +
                                     " (need two endpoints)");
    }
    uint64_t u64, v64;
    if (!ParseU64(tu, &u64) || !ParseU64(tv, &v64)) {
      return Status::InvalidArgument("non-numeric vertex id at " + path + ":" +
                                     std::to_string(line_no));
    }
    VertexId u, v;
    if (options.remap_ids) {
      auto iu = remap.emplace(u64, static_cast<VertexId>(remap.size()));
      auto iv = remap.emplace(v64, static_cast<VertexId>(remap.size()));
      u = iu.first->second;
      v = iv.first->second;
    } else {
      if (u64 > 0xfffffffeULL || v64 > 0xfffffffeULL) {
        return Status::OutOfRange("vertex id exceeds 32 bits at " + path + ":" +
                                  std::to_string(line_no));
      }
      u = static_cast<VertexId>(u64);
      v = static_cast<VertexId>(v64);
      max_id = std::max({max_id, u64, v64});
    }
    raw.push_back({u, v});
    any_edge = true;
  }
  VertexId n;
  if (options.remap_ids) {
    n = static_cast<VertexId>(remap.size());
  } else {
    n = any_edge ? static_cast<VertexId>(max_id + 1) : 0;
  }
  GraphBuilder builder(n);
  for (const Edge& e : raw) builder.AddEdge(e.u, e.v);
  *out = builder.Build();
  return Status::OK();
}

Status LoadAttributes(const std::string& path, VertexId num_vertices,
                      std::vector<Attribute>* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open attribute file: " + path);
  }
  out->assign(num_vertices, Attribute::kA);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentLine(line, "#%")) continue;
    std::istringstream ls(line);
    std::string tv, ta;
    if (!(ls >> tv >> ta)) {
      return Status::InvalidArgument("malformed attribute line at " + path +
                                     ":" + std::to_string(line_no));
    }
    uint64_t v64;
    if (!ParseU64(tv, &v64)) {
      return Status::InvalidArgument("non-numeric vertex id at " + path + ":" +
                                     std::to_string(line_no));
    }
    if (v64 >= num_vertices) {
      return Status::OutOfRange("attribute for out-of-range vertex " +
                                std::to_string(v64) + " at " + path + ":" +
                                std::to_string(line_no));
    }
    Attribute attr;
    if (ta == "0" || ta == "a" || ta == "A") {
      attr = Attribute::kA;
    } else if (ta == "1" || ta == "b" || ta == "B") {
      attr = Attribute::kB;
    } else {
      return Status::InvalidArgument("unparsable attribute token '" + ta +
                                     "' at " + path + ":" +
                                     std::to_string(line_no));
    }
    (*out)[static_cast<VertexId>(v64)] = attr;
  }
  return Status::OK();
}

Status LoadAttributedGraph(const std::string& edge_path,
                           const std::string& attribute_path,
                           const EdgeListOptions& options,
                           AttributedGraph* out) {
  AttributedGraph g;
  FAIRCLIQUE_RETURN_NOT_OK(LoadEdgeList(edge_path, options, &g));
  if (attribute_path.empty()) {
    *out = std::move(g);
    return Status::OK();
  }
  std::vector<Attribute> attrs;
  FAIRCLIQUE_RETURN_NOT_OK(
      LoadAttributes(attribute_path, g.num_vertices(), &attrs));
  // Rebuild with attributes (the CSR arrays stay identical; only the
  // attribute vector changes).
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    builder.SetAttribute(v, attrs[v]);
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
  *out = builder.Build();
  return Status::OK();
}

Status SaveEdgeList(const AttributedGraph& g, const std::string& path) {
  std::ofstream outf(path);
  if (!outf) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  outf << "# fairclique edge list: " << g.num_vertices() << " vertices, "
       << g.num_edges() << " edges\n";
  for (const Edge& e : g.edges()) {
    outf << e.u << ' ' << e.v << '\n';
  }
  if (!outf) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status SaveAttributes(const AttributedGraph& g, const std::string& path) {
  std::ofstream outf(path);
  if (!outf) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    outf << v << ' ' << AttrIndex(g.attribute(v)) << '\n';
  }
  if (!outf) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace fairclique
