#ifndef FAIRCLIQUE_GRAPH_FINGERPRINT_H_
#define FAIRCLIQUE_GRAPH_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace fairclique {

/// 64-bit content fingerprint of an attributed graph: FNV-1a over the
/// normalized representation (vertex count, sorted undirected edge array,
/// attribute bytes). Because AttributedGraph is always normalized (no
/// duplicates, edges sorted with u < v), two graphs with the same vertices,
/// edges and attributes fingerprint identically no matter how they were
/// built. The fingerprint is deliberately label-sensitive — search results
/// report vertex ids, so a relabeled graph is a different graph to a cache.
/// Binary (FCG1) round trips preserve ids and therefore the fingerprint;
/// text edge-list loading may remap sparse ids to a dense range and
/// fingerprint accordingly. Used by the service layer to key cached search
/// results to graph *content*, not registry names.
uint64_t GraphFingerprint(const AttributedGraph& g);

/// Printable 16-hex-digit form of a fingerprint.
std::string FingerprintHex(uint64_t fingerprint);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_FINGERPRINT_H_
