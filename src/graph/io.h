#ifndef FAIRCLIQUE_GRAPH_IO_H_
#define FAIRCLIQUE_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace fairclique {

/// Options controlling edge-list parsing.
struct EdgeListOptions {
  /// Lines starting with any of these characters are skipped (SNAP files use
  /// '#'; network-repository files use '%').
  std::string comment_prefixes = "#%";
  /// When true, vertex ids in the file may be arbitrary (sparse) and are
  /// remapped to a dense [0, n) range in first-appearance order. When false,
  /// ids must already be dense and `num_vertices` is max id + 1.
  bool remap_ids = true;
};

/// Loads a whitespace-separated edge list ("u v" per line, undirected,
/// SNAP/network-repository style). All vertices receive attribute kA;
/// use LoadAttributes or an AttributeAssigner afterwards.
///
/// Fails with InvalidArgument on malformed lines (non-numeric tokens, missing
/// endpoint) and IOError when the file cannot be read.
Status LoadEdgeList(const std::string& path, const EdgeListOptions& options,
                    AttributedGraph* out);

/// Loads per-vertex attributes from a text file with lines "vertex attr"
/// where attr is 0/1 or a/b. Vertices absent from the file keep attribute kA.
/// Fails on out-of-range vertex ids or unparsable attribute tokens.
Status LoadAttributes(const std::string& path, VertexId num_vertices,
                      std::vector<Attribute>* out);

/// Loads an edge list and an attribute file into one attributed graph.
/// When `attribute_path` is empty all attributes default to kA.
Status LoadAttributedGraph(const std::string& edge_path,
                           const std::string& attribute_path,
                           const EdgeListOptions& options,
                           AttributedGraph* out);

/// Writes "u v" lines (one per undirected edge) plus a header comment.
Status SaveEdgeList(const AttributedGraph& g, const std::string& path);

/// Writes "v attr" lines with attr in {0, 1}.
Status SaveAttributes(const AttributedGraph& g, const std::string& path);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_IO_H_
