#ifndef FAIRCLIQUE_GRAPH_TRIANGLES_H_
#define FAIRCLIQUE_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Calls `fn(w, euw, evw)` for every common neighbor w of u and v, where
/// euw/evw are the edge ids of {u,w} and {v,w}. Merge-intersects the two
/// sorted adjacency rows: O(deg(u) + deg(v)).
template <typename Fn>
void ForEachCommonNeighbor(const AttributedGraph& g, VertexId u, VertexId v,
                           Fn&& fn) {
  auto nu = g.neighbors(u);
  auto nv = g.neighbors(v);
  auto eu = g.edge_ids(u);
  auto ev = g.edge_ids(v);
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      fn(nu[i], eu[i], ev[j]);
      ++i;
      ++j;
    }
  }
}

/// Same as ForEachCommonNeighbor but skips vertices/edges marked dead. Used
/// inside peeling loops where the graph shrinks logically. Empty spans mean
/// "all alive".
template <typename Fn>
void ForEachAliveCommonNeighbor(const AttributedGraph& g, VertexId u,
                                VertexId v,
                                std::span<const uint8_t> vertex_alive,
                                std::span<const uint8_t> edge_alive, Fn&& fn) {
  auto nu = g.neighbors(u);
  auto nv = g.neighbors(v);
  auto eu = g.edge_ids(u);
  auto ev = g.edge_ids(v);
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      VertexId w = nu[i];
      bool ok = vertex_alive.empty() || vertex_alive[w];
      if (ok && !edge_alive.empty()) {
        ok = edge_alive[eu[i]] && edge_alive[ev[j]];
      }
      if (ok) fn(w, eu[i], ev[j]);
      ++i;
      ++j;
    }
  }
}

/// Number of common neighbors of u and v.
inline uint32_t CountCommonNeighbors(const AttributedGraph& g, VertexId u,
                                     VertexId v) {
  uint32_t c = 0;
  ForEachCommonNeighbor(g, u, v, [&](VertexId, EdgeId, EdgeId) { ++c; });
  return c;
}

/// Total number of triangles in the graph (each counted once).
uint64_t CountTriangles(const AttributedGraph& g);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_TRIANGLES_H_
