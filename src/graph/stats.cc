#include "graph/stats.h"

#include <algorithm>
#include <sstream>

#include "graph/cores.h"
#include "graph/triangles.h"

namespace fairclique {

GraphStats ComputeGraphStats(const AttributedGraph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.max_degree = g.max_degree();
  s.attribute_counts = g.attribute_counts();
  if (g.num_vertices() == 0) return s;

  s.avg_degree = 2.0 * g.num_edges() / g.num_vertices();
  std::vector<uint32_t> degrees(g.num_vertices());
  uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees[v] = g.degree(v);
    wedges += static_cast<uint64_t>(degrees[v]) * (degrees[v] - 1) / 2;
  }
  std::sort(degrees.begin(), degrees.end());
  auto pct = [&degrees](double p) {
    size_t idx = static_cast<size_t>(p * (degrees.size() - 1));
    return degrees[idx];
  };
  s.degree_p50 = pct(0.50);
  s.degree_p90 = pct(0.90);
  s.degree_p99 = pct(0.99);

  s.degeneracy = ComputeCores(g).degeneracy;
  s.triangle_count = CountTriangles(g);
  s.global_clustering =
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(s.triangle_count) /
                        static_cast<double>(wedges);

  auto components = g.ConnectedComponents();
  s.num_components = components.size();
  for (const auto& comp : components) {
    s.largest_component =
        std::max(s.largest_component, static_cast<VertexId>(comp.size()));
  }

  if (g.num_edges() > 0) {
    // Same-attribute fraction and Newman assortativity from the 2x2 mixing
    // matrix e[i][j] = fraction of edge *endpoints* pairs (i, j).
    double e[2][2] = {{0, 0}, {0, 0}};
    uint64_t same = 0;
    for (const Edge& edge : g.edges()) {
      int i = AttrIndex(g.attribute(edge.u));
      int j = AttrIndex(g.attribute(edge.v));
      // Symmetric contribution, normalized by 2E endpoint pairs.
      e[i][j] += 0.5;
      e[j][i] += 0.5;
      if (i == j) ++same;
    }
    const double total = static_cast<double>(g.num_edges());
    for (auto& row : e) {
      for (double& cell : row) cell /= total;
    }
    s.same_attribute_edge_fraction = static_cast<double>(same) / total;
    double trace = e[0][0] + e[1][1];
    double a0 = e[0][0] + e[0][1];
    double a1 = e[1][0] + e[1][1];
    double sum_ab = a0 * a0 + a1 * a1;
    s.attribute_assortativity =
        sum_ab >= 1.0 ? 1.0 : (trace - sum_ab) / (1.0 - sum_ab);
  }
  return s;
}

std::string FormatGraphStats(const GraphStats& s) {
  std::ostringstream out;
  out << "vertices:            " << s.num_vertices << "\n"
      << "edges:               " << s.num_edges << "\n"
      << "avg degree:          " << s.avg_degree << "\n"
      << "degree p50/p90/p99:  " << s.degree_p50 << " / " << s.degree_p90
      << " / " << s.degree_p99 << "\n"
      << "max degree:          " << s.max_degree << "\n"
      << "degeneracy:          " << s.degeneracy << "\n"
      << "triangles:           " << s.triangle_count << "\n"
      << "global clustering:   " << s.global_clustering << "\n"
      << "components:          " << s.num_components << " (largest "
      << s.largest_component << ")\n"
      << "attributes a/b:      " << s.attribute_counts.a() << " / "
      << s.attribute_counts.b() << "\n"
      << "same-attr edges:     " << s.same_attribute_edge_fraction << "\n"
      << "assortativity:       " << s.attribute_assortativity << "\n";
  return out.str();
}

}  // namespace fairclique
