#ifndef FAIRCLIQUE_GRAPH_STATS_H_
#define FAIRCLIQUE_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Structural summary of an attributed graph, as reported by the CLI's
/// `stats` subcommand and used to validate the dataset stand-ins against
/// their intended roles (degree skew, clustering, attribute mixing).
struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  /// Degree distribution percentiles: p50, p90, p99.
  uint32_t degree_p50 = 0;
  uint32_t degree_p90 = 0;
  uint32_t degree_p99 = 0;
  uint32_t degeneracy = 0;
  uint64_t triangle_count = 0;
  /// Global clustering coefficient: 3*triangles / #wedges (0 when no wedge).
  double global_clustering = 0.0;
  size_t num_components = 0;
  VertexId largest_component = 0;
  AttrCounts attribute_counts;
  /// Fraction of edges whose endpoints share an attribute (0.5 for
  /// independent balanced labels; higher = homophilous).
  double same_attribute_edge_fraction = 0.0;
  /// Newman attribute assortativity coefficient in [-1, 1].
  double attribute_assortativity = 0.0;
};

/// Computes all of the above in O(alpha * E + V log V).
GraphStats ComputeGraphStats(const AttributedGraph& g);

/// Multi-line human-readable rendering.
std::string FormatGraphStats(const GraphStats& stats);

}  // namespace fairclique

#endif  // FAIRCLIQUE_GRAPH_STATS_H_
