#include "graph/triangles.h"

namespace fairclique {

uint64_t CountTriangles(const AttributedGraph& g) {
  // Sum over edges of |N(u) ∩ N(v)| counts each triangle three times.
  uint64_t total = 0;
  for (const Edge& e : g.edges()) {
    total += CountCommonNeighbors(g, e.u, e.v);
  }
  return total / 3;
}

}  // namespace fairclique
