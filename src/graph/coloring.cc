#include "graph/coloring.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "graph/cores.h"

namespace fairclique {

namespace {

std::vector<VertexId> OrderVertices(const AttributedGraph& g,
                                    ColoringOrder order) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> verts(n);
  std::iota(verts.begin(), verts.end(), 0);
  switch (order) {
    case ColoringOrder::kNatural:
      break;
    case ColoringOrder::kDegreeDescending: {
      // Counting sort by degree, descending; ties by id for determinism.
      uint32_t dmax = g.max_degree();
      std::vector<std::vector<VertexId>> buckets(dmax + 1);
      for (VertexId v = 0; v < n; ++v) buckets[g.degree(v)].push_back(v);
      verts.clear();
      for (size_t d = buckets.size(); d-- > 0;) {
        for (VertexId v : buckets[d]) verts.push_back(v);
      }
      break;
    }
    case ColoringOrder::kDegeneracy: {
      // Smallest-last: color in reverse peeling order, which bounds the
      // number of colors by degeneracy + 1.
      CoreDecomposition cores = ComputeCores(g);
      verts.assign(cores.peel_order.rbegin(), cores.peel_order.rend());
      break;
    }
  }
  return verts;
}

}  // namespace

Coloring GreedyColoring(const AttributedGraph& g, ColoringOrder order) {
  const VertexId n = g.num_vertices();
  Coloring result;
  result.color.assign(n, -1);
  std::vector<VertexId> verts = OrderVertices(g, order);

  // `used[c] == v` marks color c as used by a neighbor of the vertex v being
  // colored; avoids clearing a bitmap between vertices.
  std::vector<VertexId> used(static_cast<size_t>(g.max_degree()) + 2,
                             kInvalidVertex);
  int num_colors = 0;
  for (VertexId v : verts) {
    for (VertexId w : g.neighbors(v)) {
      ColorId c = result.color[w];
      if (c >= 0) used[static_cast<size_t>(c)] = v;
    }
    ColorId c = 0;
    while (used[static_cast<size_t>(c)] == v) ++c;
    result.color[v] = c;
    num_colors = std::max(num_colors, c + 1);
  }
  result.num_colors = num_colors;
  return result;
}

bool IsProperColoring(const AttributedGraph& g, const Coloring& coloring) {
  if (coloring.color.size() != g.num_vertices()) return false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ColorId c = coloring.color[v];
    if (c < 0 || c >= coloring.num_colors) return false;
    for (VertexId w : g.neighbors(v)) {
      if (coloring.color[w] == c) return false;
    }
  }
  return true;
}

std::vector<AttrCounts> ColorfulDegrees(const AttributedGraph& g,
                                        const Coloring& coloring) {
  const VertexId n = g.num_vertices();
  std::vector<AttrCounts> result(n);
  // seen[attr][color] == v marks (attr, color) as counted for vertex v.
  std::vector<VertexId> seen[2];
  seen[0].assign(static_cast<size_t>(coloring.num_colors), kInvalidVertex);
  seen[1].assign(static_cast<size_t>(coloring.num_colors), kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : g.neighbors(v)) {
      int ai = AttrIndex(g.attribute(w));
      size_t c = static_cast<size_t>(coloring.color[w]);
      if (seen[ai][c] != v) {
        seen[ai][c] = v;
        result[v].counts[ai]++;
      }
    }
  }
  return result;
}

std::vector<int64_t> EnhancedColorfulDegrees(const AttributedGraph& g,
                                             const Coloring& coloring) {
  const VertexId n = g.num_vertices();
  std::vector<int64_t> result(n, 0);
  // For each vertex, classify each neighbor color as a-only / b-only / mixed.
  std::vector<VertexId> seen[2];
  seen[0].assign(static_cast<size_t>(coloring.num_colors), kInvalidVertex);
  seen[1].assign(static_cast<size_t>(coloring.num_colors), kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    int64_t ca = 0, cb = 0, cm = 0;
    for (VertexId w : g.neighbors(v)) {
      int ai = AttrIndex(g.attribute(w));
      int oi = 1 - ai;
      size_t c = static_cast<size_t>(coloring.color[w]);
      if (seen[ai][c] == v) continue;  // (attr, color) already seen.
      seen[ai][c] = v;
      bool other_present = seen[oi][c] == v;
      if (other_present) {
        // Color moves from the other-only class to mixed.
        if (oi == 0) {
          --ca;
        } else {
          --cb;
        }
        ++cm;
      } else {
        if (ai == 0) {
          ++ca;
        } else {
          ++cb;
        }
      }
    }
    result[v] = BalancedAssignMin(ca, cb, cm);
  }
  return result;
}

}  // namespace fairclique
