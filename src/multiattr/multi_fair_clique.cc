#include "multiattr/multi_fair_clique.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "core/enumeration.h"
#include "graph/cores.h"
#include "reduction/colorful_core.h"

namespace fairclique {

MultiAttrGraph::MultiAttrGraph(AttributedGraph graph,
                               std::vector<uint8_t> labels, int num_labels)
    : graph_(std::move(graph)),
      labels_(std::move(labels)),
      num_labels_(num_labels),
      label_counts_(static_cast<size_t>(num_labels), 0) {
  FC_CHECK(num_labels_ >= 1) << "need at least one label";
  FC_CHECK(labels_.size() == graph_.num_vertices())
      << "label vector size mismatch";
  for (uint8_t l : labels_) {
    FC_CHECK(l < num_labels_) << "label out of range";
    label_counts_[l]++;
  }
}

bool MultiFairnessParams::Satisfied(const std::vector<int64_t>& counts) const {
  int64_t lo = counts[0], hi = counts[0];
  for (int64_t c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return lo >= k && hi - lo <= delta;
}

int64_t MultiFairnessParams::BestFairSubsetSize(
    const std::vector<int64_t>& avail) const {
  int64_t lo = avail[0];
  for (int64_t c : avail) lo = std::min(lo, c);
  if (lo < k) return 0;
  // Take min(avail) from the scarcest label; every other label may exceed it
  // by at most delta. The objective is nondecreasing in the chosen floor, so
  // the scarcest label's full capacity is optimal.
  int64_t total = 0;
  for (int64_t c : avail) total += std::min(c, lo + delta);
  return total;
}

namespace {

// Ordered branch-and-bound over one connected component, label-generalized.
// Mirrors the binary ComponentSearch: colorful-core peel order, fairness
// checked at every node, sound prunes only.
class MultiComponentSearch {
 public:
  MultiComponentSearch(const AttributedGraph& comp,
                       const std::vector<uint8_t>& labels, int num_labels,
                       const MultiFairnessParams& params, uint64_t node_limit,
                       uint64_t* nodes, bool* aborted,
                       std::vector<VertexId>* best,
                       std::vector<int64_t>* best_counts)
      : g_(comp),
        labels_(labels),
        d_(num_labels),
        params_(params),
        node_limit_(node_limit),
        nodes_(nodes),
        aborted_(aborted),
        best_(best),
        best_counts_(best_counts) {
    // Ordering: plain degeneracy peel order (the binary CalColorOD's
    // colorful core is attribute-specific; degeneracy order provides the
    // same exact-enumeration guarantee).
    CoreDecomposition cores = ComputeCores(g_);
    rank_of_ = cores.position;
    vertex_at_.resize(g_.num_vertices());
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      vertex_at_[rank_of_[v]] = v;
    }
    adj_.resize(g_.num_vertices());
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      auto& row = adj_[rank_of_[v]];
      row.reserve(g_.degree(v));
      for (VertexId w : g_.neighbors(v)) row.push_back(rank_of_[w]);
      std::sort(row.begin(), row.end());
    }
    coloring_ = GreedyColoring(g_);
  }

  template <typename MapFn>
  void Run(MapFn&& to_original) {
    map_to_original_ = [&](uint32_t r) { return to_original(vertex_at_[r]); };
    std::vector<uint32_t> all(g_.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    std::vector<int64_t> cnt(d_, 0);
    for (uint32_t r = 0; r < g_.num_vertices(); ++r) {
      cnt[LabelOfRank(r)]++;
    }
    r_.clear();
    r_cnt_.assign(d_, 0);
    Branch(all, cnt);
  }

 private:
  uint8_t LabelOfRank(uint32_t r) const { return labels_[vertex_at_[r]]; }

  int64_t Target() const {
    return std::max<int64_t>(static_cast<int64_t>(d_) * params_.k,
                             static_cast<int64_t>(best_->size()) + 1);
  }

  void Branch(const std::vector<uint32_t>& candidates,
              std::vector<int64_t> cand_cnt) {
    if (*aborted_) return;
    ++*nodes_;
    if (node_limit_ != 0 && *nodes_ > node_limit_) {
      *aborted_ = true;
      return;
    }
    if (r_.size() > best_->size() && params_.Satisfied(r_cnt_)) {
      best_->clear();
      for (uint32_t r : r_) best_->push_back(map_to_original_(r));
      *best_counts_ = r_cnt_;
    }
    if (candidates.empty()) return;
    if (static_cast<int64_t>(r_.size() + candidates.size()) < Target()) {
      return;
    }
    // Label feasibility: every label must still be able to reach k.
    for (int l = 0; l < d_; ++l) {
      if (r_cnt_[l] + cand_cnt[l] < params_.k) return;
    }
    // Spread cap (sound): label x is frozen when its count already matches
    // the weakest label's best reachable count plus delta.
    const std::vector<uint32_t>* cand = &candidates;
    std::vector<uint32_t> capped;
    {
      int64_t weakest = INT64_MAX;
      for (int l = 0; l < d_; ++l) {
        weakest = std::min(weakest, r_cnt_[l] + cand_cnt[l]);
      }
      bool drop[256] = {};
      bool any = false;
      for (int l = 0; l < d_; ++l) {
        if (cand_cnt[l] > 0 && r_cnt_[l] >= weakest + params_.delta) {
          drop[l] = true;
          any = true;
        }
      }
      if (any) {
        capped.reserve(cand->size());
        for (uint32_t r : *cand) {
          if (!drop[LabelOfRank(r)]) capped.push_back(r);
        }
        for (int l = 0; l < d_; ++l) {
          if (drop[l]) cand_cnt[l] = 0;
        }
        cand = &capped;
        if (static_cast<int64_t>(r_.size() + cand->size()) < Target()) return;
      }
    }
    // Label-capacity bound (generalized uba): even with perfect structure,
    // the branch yields at most BestFairSubsetSize(r_cnt + cand_cnt).
    {
      std::vector<int64_t> capacity(d_);
      for (int l = 0; l < d_; ++l) capacity[l] = r_cnt_[l] + cand_cnt[l];
      if (params_.BestFairSubsetSize(capacity) < Target()) return;
    }

    for (size_t i = 0; i < cand->size(); ++i) {
      if (*aborted_) return;
      uint32_t u = (*cand)[i];
      if (static_cast<int64_t>(r_.size() + 1 + (cand->size() - i - 1)) <
          Target()) {
        return;  // Later children only get smaller.
      }
      std::vector<uint32_t> next;
      std::vector<int64_t> next_cnt(d_, 0);
      const std::vector<uint32_t>& nbrs = adj_[u];
      size_t a = i + 1, b = 0;
      while (a < cand->size() && b < nbrs.size()) {
        if ((*cand)[a] < nbrs[b]) {
          ++a;
        } else if ((*cand)[a] > nbrs[b]) {
          ++b;
        } else {
          next.push_back((*cand)[a]);
          next_cnt[LabelOfRank((*cand)[a])]++;
          ++a;
          ++b;
        }
      }
      uint8_t lu = LabelOfRank(u);
      r_.push_back(u);
      r_cnt_[lu]++;
      Branch(next, std::move(next_cnt));
      r_.pop_back();
      r_cnt_[lu]--;
    }
  }

  const AttributedGraph& g_;
  const std::vector<uint8_t>& labels_;
  const int d_;
  const MultiFairnessParams params_;
  const uint64_t node_limit_;
  uint64_t* nodes_;
  bool* aborted_;
  std::vector<VertexId>* best_;
  std::vector<int64_t>* best_counts_;

  std::vector<uint32_t> rank_of_;
  std::vector<VertexId> vertex_at_;
  std::vector<std::vector<uint32_t>> adj_;
  Coloring coloring_;
  std::vector<uint32_t> r_;
  std::vector<int64_t> r_cnt_;
  std::function<VertexId(uint32_t)> map_to_original_;
};

// Label-wise colorful core reduction: inside a multi-fair clique every
// vertex has, for each label l, at least k - [label(v) == l] - ... >= k - 1
// same-label neighbors and >= k others, all distinctly colored; peel any
// vertex whose per-label distinct-color degree falls below k - 1 for its own
// label or k for any other. (A uniform threshold of k-1 on every label is
// used, which is sound and simpler; the sharper per-label rule only removes
// slightly more.)
std::vector<uint8_t> MultiColorfulCoreAlive(const MultiAttrGraph& mg, int k) {
  const AttributedGraph& g = mg.graph();
  const int d = mg.num_labels();
  const VertexId n = g.num_vertices();
  std::vector<uint8_t> alive(n, 1);
  if (k <= 1 || n == 0) return alive;
  Coloring coloring = GreedyColoring(g);
  // counts[v][l * num_colors + c]: alive neighbors of v with label l and
  // color c. Dense per-vertex tables would be large; use the flat key trick
  // from the binary module.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> table(n);
  std::vector<std::vector<int64_t>> dmin(n, std::vector<int64_t>(d, 0));
  for (VertexId v = 0; v < n; ++v) {
    std::vector<uint32_t> keys;
    keys.reserve(g.degree(v));
    for (VertexId w : g.neighbors(v)) {
      keys.push_back(static_cast<uint32_t>(coloring.color[w]) *
                         static_cast<uint32_t>(d) +
                     mg.label(w));
    }
    std::sort(keys.begin(), keys.end());
    for (size_t i = 0; i < keys.size();) {
      size_t j = i;
      while (j < keys.size() && keys[j] == keys[i]) ++j;
      table[v].emplace_back(keys[i], static_cast<uint32_t>(j - i));
      dmin[v][keys[i] % static_cast<uint32_t>(d)]++;
      i = j;
    }
  }
  auto violates = [&](VertexId v) {
    for (int l = 0; l < d; ++l) {
      if (dmin[v][l] < k - 1) return true;
    }
    return false;
  };
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (violates(v)) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    uint32_t vkey = static_cast<uint32_t>(coloring.color[v]) *
                        static_cast<uint32_t>(d) +
                    mg.label(v);
    for (VertexId u : g.neighbors(v)) {
      if (!alive[u]) continue;
      auto& tab = table[u];
      auto it = std::lower_bound(
          tab.begin(), tab.end(), vkey,
          [](const std::pair<uint32_t, uint32_t>& p, uint32_t key_value) {
            return p.first < key_value;
          });
      FC_CHECK(it != tab.end() && it->first == vkey) << "key missing";
      if (--it->second == 0) {
        if (--dmin[u][mg.label(v)] == k - 2) {
          alive[u] = 0;
          queue.push_back(u);
        }
      }
    }
  }
  return alive;
}

}  // namespace

MultiSearchResult FindMaximumMultiFairClique(const MultiAttrGraph& mg,
                                             const MultiFairnessParams& params,
                                             uint64_t node_limit) {
  FC_CHECK(params.k >= 1 && params.delta >= 0) << "bad fairness parameters";
  FC_CHECK(mg.num_labels() <= 256) << "at most 256 labels supported";
  MultiSearchResult result;
  result.label_counts.assign(mg.num_labels(), 0);
  const AttributedGraph& g = mg.graph();
  if (g.num_vertices() == 0) return result;

  // Reduction: label-wise colorful core.
  std::vector<uint8_t> alive = MultiColorfulCoreAlive(mg, params.k);
  std::vector<VertexId> kept_ids;
  AttributedGraph reduced = g.FilteredSubgraph(alive, {}, &kept_ids);
  std::vector<uint8_t> kept_labels(reduced.num_vertices());
  for (VertexId v = 0; v < reduced.num_vertices(); ++v) {
    kept_labels[v] = mg.label(kept_ids[v]);
  }

  for (const std::vector<VertexId>& comp_vertices :
       reduced.ConnectedComponents()) {
    if (static_cast<int64_t>(comp_vertices.size()) <
        std::max<int64_t>(static_cast<int64_t>(mg.num_labels()) * params.k,
                          static_cast<int64_t>(result.clique.size()) + 1)) {
      continue;
    }
    std::vector<VertexId> comp_original;
    AttributedGraph comp =
        reduced.InducedSubgraph(comp_vertices, &comp_original);
    std::vector<uint8_t> comp_labels(comp.num_vertices());
    for (VertexId v = 0; v < comp.num_vertices(); ++v) {
      comp_labels[v] = kept_labels[comp_original[v]];
    }
    bool aborted = false;
    MultiComponentSearch search(comp, comp_labels, mg.num_labels(), params,
                                node_limit, &result.nodes, &aborted,
                                &result.clique, &result.label_counts);
    search.Run([&](VertexId local) { return kept_ids[comp_original[local]]; });
    if (aborted) {
      result.completed = false;
      break;
    }
  }
  std::sort(result.clique.begin(), result.clique.end());
  return result;
}

int64_t MaxMultiFairCliqueSizeByEnumeration(
    const MultiAttrGraph& mg, const MultiFairnessParams& params) {
  int64_t best = 0;
  EnumerateMaximalCliques(mg.graph(), [&](const std::vector<VertexId>& m) {
    std::vector<int64_t> cnt(mg.num_labels(), 0);
    for (VertexId v : m) cnt[mg.label(v)]++;
    best = std::max(best, params.BestFairSubsetSize(cnt));
  });
  return best;
}

bool IsMultiFairClique(const MultiAttrGraph& mg,
                       const std::vector<VertexId>& vertices,
                       const MultiFairnessParams& params) {
  std::vector<int64_t> cnt(mg.num_labels(), 0);
  for (VertexId v : vertices) cnt[mg.label(v)]++;
  if (!params.Satisfied(cnt)) return false;
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!mg.graph().HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

MultiAttrGraph AssignLabelsUniform(const AttributedGraph& g, int num_labels,
                                   Rng& rng) {
  std::vector<uint8_t> labels(g.num_vertices());
  for (auto& l : labels) {
    l = static_cast<uint8_t>(rng.NextBounded(static_cast<uint64_t>(num_labels)));
  }
  return MultiAttrGraph(g, std::move(labels), num_labels);
}

MultiAttrGraph PlantBalancedMultiClique(const MultiAttrGraph& mg,
                                        uint32_t size, Rng& rng,
                                        std::vector<VertexId>* members) {
  const AttributedGraph& g = mg.graph();
  const int d = mg.num_labels();
  std::vector<std::vector<VertexId>> pools(static_cast<size_t>(d));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    pools[mg.label(v)].push_back(v);
  }
  for (auto& pool : pools) rng.Shuffle(pool);
  std::vector<VertexId> chosen;
  // Round-robin across labels: counts differ by at most one.
  for (uint32_t i = 0; chosen.size() < size; ++i) {
    auto& pool = pools[i % static_cast<uint32_t>(d)];
    FC_CHECK(!pool.empty()) << "not enough vertices of label "
                            << (i % static_cast<uint32_t>(d));
    chosen.push_back(pool.back());
    pool.pop_back();
  }
  GraphBuilder builder(g.num_vertices());
  for (const Edge& e : g.edges()) builder.AddEdge(e.u, e.v);
  for (size_t i = 0; i < chosen.size(); ++i) {
    for (size_t j = i + 1; j < chosen.size(); ++j) {
      builder.AddEdge(chosen[i], chosen[j]);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  if (members != nullptr) *members = chosen;
  return MultiAttrGraph(builder.Build(), mg.labels(), d);
}

}  // namespace fairclique
