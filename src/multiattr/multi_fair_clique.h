#ifndef FAIRCLIQUE_MULTIATTR_MULTI_FAIR_CLIQUE_H_
#define FAIRCLIQUE_MULTIATTR_MULTI_FAIR_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/coloring.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace fairclique {

/// Generalization of the relative fair clique model to d-valued attributes
/// (the paper fixes |A| = 2; its foundational weak/strong models of Pan et
/// al. are defined for arbitrary attribute arity, and the natural relative
/// generalization requires every attribute value to appear at least k times
/// with the spread max_i cnt_i - min_i cnt_i at most delta).
///
/// The module is self-contained on top of the binary substrate: a
/// MultiAttrGraph pairs the CSR graph with a per-vertex label in
/// [0, num_labels); the search, reduction and bounds generalize the binary
/// engine's rules label-wise. For num_labels == 2 the answers coincide with
/// FindMaximumFairClique (cross-checked in tests).

/// An attributed graph whose vertices carry one of `num_labels` values.
/// Wraps an AttributedGraph for its CSR topology; the binary attribute of
/// the wrapped graph is ignored.
class MultiAttrGraph {
 public:
  MultiAttrGraph() = default;

  /// `labels[v]` in [0, num_labels). Aborts on out-of-range labels.
  MultiAttrGraph(AttributedGraph graph, std::vector<uint8_t> labels,
                 int num_labels);

  const AttributedGraph& graph() const { return graph_; }
  int num_labels() const { return num_labels_; }
  uint8_t label(VertexId v) const { return labels_[v]; }
  const std::vector<uint8_t>& labels() const { return labels_; }

  /// Per-label vertex counts over the whole graph.
  const std::vector<int64_t>& label_counts() const { return label_counts_; }

 private:
  AttributedGraph graph_;
  std::vector<uint8_t> labels_;
  int num_labels_ = 0;
  std::vector<int64_t> label_counts_;
};

/// Fairness parameters for d-ary attributes: every label's count >= k and
/// the spread (max - min of counts) <= delta.
struct MultiFairnessParams {
  int k = 1;
  int delta = 0;

  bool Satisfied(const std::vector<int64_t>& counts) const;

  /// Largest fair subset obtainable from a clique with per-label counts
  /// `avail`: 0 when min(avail) < k, else sum_i min(avail_i, min(avail) +
  /// delta) — the closed form behind the enumeration oracle and the
  /// label-capacity upper bound.
  int64_t BestFairSubsetSize(const std::vector<int64_t>& avail) const;
};

/// Result of the multi-attribute search.
struct MultiSearchResult {
  std::vector<VertexId> clique;        // sorted original ids; empty if none
  std::vector<int64_t> label_counts;   // size num_labels
  uint64_t nodes = 0;
  bool completed = true;
};

/// Exact maximum multi-fair clique: label-wise colorful-core reduction
/// (peel vertices whose per-label distinct-color degree cannot support a
/// fair clique), then ordered branch-and-bound with generalized size /
/// label-feasibility / spread-cap prunes and a label-capacity color bound.
/// `node_limit` 0 = unlimited.
MultiSearchResult FindMaximumMultiFairClique(const MultiAttrGraph& g,
                                             const MultiFairnessParams& params,
                                             uint64_t node_limit = 0);

/// Exhaustive oracle via maximal clique enumeration + BestFairSubsetSize;
/// exponential, for tests and ground truth.
int64_t MaxMultiFairCliqueSizeByEnumeration(const MultiAttrGraph& g,
                                            const MultiFairnessParams& params);

/// True when `vertices` is a clique of g.graph() meeting the fairness
/// conditions.
bool IsMultiFairClique(const MultiAttrGraph& g,
                       const std::vector<VertexId>& vertices,
                       const MultiFairnessParams& params);

/// Uniformly assigns labels in [0, num_labels) to every vertex of `g`.
MultiAttrGraph AssignLabelsUniform(const AttributedGraph& g, int num_labels,
                                   Rng& rng);

/// Adds all pairwise edges among `size` vertices chosen to spread evenly
/// across labels (|count_i - count_j| <= 1), returning the new graph and the
/// members — ground truth for tests and examples.
MultiAttrGraph PlantBalancedMultiClique(const MultiAttrGraph& g, uint32_t size,
                                        Rng& rng,
                                        std::vector<VertexId>* members);

}  // namespace fairclique

#endif  // FAIRCLIQUE_MULTIATTR_MULTI_FAIR_CLIQUE_H_
