// Seeded violation: a raw std primitive outside the wrapper header.
// expect: raw-primitive
#include <mutex>

namespace fixture {

class BadCache {
 public:
  int Get() {
    std::lock_guard<std::mutex> lock(mu_);
    return value_;
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace fixture
