// Seeded violation: allocation and lock acquisition inside a hot path.
// expect: hot-path
#include "common/thread_annotations.h"

namespace fixture {

class BadRecorder {
 public:
  // fclint: hot-path-begin(bad_recorder)
  void Record(int v) {
    auto* copy = new int(v);  // allocation on the hot path
    fc::MutexLock lock(mu_);  // blocking acquisition on the hot path
    last_ = *copy;
    delete copy;
  }
  // fclint: hot-path-end

 private:
  fc::Mutex mu_;
  int last_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
