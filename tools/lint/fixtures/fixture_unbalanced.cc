// Seeded violation: a region opened and never closed.
// expect: markers
namespace fixture {

// fclint: hot-path-begin(never_closed)
inline int Twice(int v) { return v * 2; }

}  // namespace fixture
