// Clean fixture: annotated wrapper usage and a well-behaved hot path.
#include <atomic>

#include "common/thread_annotations.h"

namespace fixture {

class GoodCounter {
 public:
  // fclint: hot-path-begin(good_counter)
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  // fclint: hot-path-end

  int Guarded() {
    fc::MutexLock lock(mu_);
    return guarded_;
  }

 private:
  std::atomic<int> value_{0};
  fc::Mutex mu_;
  int guarded_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
