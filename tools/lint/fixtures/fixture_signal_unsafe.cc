// Seeded violation: stdio and string building inside a signal handler.
// expect: signal-safe
#include <cstdio>
#include <string>

namespace fixture {

// fclint: signal-safe-begin
void BadHandler(int sig) {
  std::string msg = std::to_string(sig);  // allocates
  printf("crash: %s\n", msg.c_str());    // stdio in a signal handler
}
// fclint: signal-safe-end

}  // namespace fixture
