#!/usr/bin/env python3
"""fclint: repo-specific lint rules the generic toolchain cannot express.

Checks (all on src/**.h / src/**.cc, comments and string literals stripped
before matching so documentation never trips a rule):

  raw-primitive   Every mutex in src/ must be the annotated fc:: wrapper
                  from common/thread_annotations.h -- raw std::mutex,
                  std::shared_mutex, std::condition_variable and the std
                  lock holders are banned outside that one header. This is
                  what keeps the clang thread-safety analysis sound: a raw
                  primitive is invisible to it.

  signal-safe     Regions marked `// fclint: signal-safe-begin` ..
                  `// fclint: signal-safe-end` run inside a fatal signal
                  handler. Allocation, stdio, std::string construction,
                  logging, and blocking lock acquisition are banned
                  (try-lock probes are fine -- that is how the handler
                  reads shared tables without deadlocking).

  hot-path        Regions marked `// fclint: hot-path-begin(<name>)` ..
                  `// fclint: hot-path-end` are per-query / per-event fast
                  paths. Allocation expressions, string building, logging,
                  and lock acquisition are banned.

  markers         Marker pairs must balance, and the regions the repo has
                  committed to keeping fast/safe (REQUIRED_REGIONS) must
                  still exist -- deleting a marker to silence the lint is
                  itself a violation.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

  tools/lint/fclint.py [--root DIR]       lint the tree
  tools/lint/fclint.py --self-test        run against the seeded fixtures
"""

import argparse
import os
import re
import sys

# The one file allowed to name raw primitives: it wraps them.
WRAPPER_HEADER = os.path.join("src", "common", "thread_annotations.h")

# Regions that must exist somewhere under src/ (name -> human reason).
REQUIRED_REGIONS = {
    "signal-safe": "the crash handler postmortem path",
    "hot-path:event_journal_record": "EventJournal::Record",
    "hot-path:counter_increment": "Counter::Increment",
    "hot-path:histogram_record": "Histogram::Record",
    "hot-path:branch_kernel": "the branch-and-bound inner loop",
}

RAW_PRIMITIVES = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)

# Banned in BOTH region kinds: allocation and logging.
ALLOC_TOKENS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "new-expression"),
    (re.compile(r"\bnew\s*\("), "placement/new-expression"),
    (re.compile(r"\b(malloc|calloc|realloc|strdup)\s*\("), "malloc-family"),
    (re.compile(r"\bmake_(unique|shared)\s*<"), "make_unique/make_shared"),
    (re.compile(r"\bstd\s*::\s*(string|to_string|vector|map|deque)\s*[<({]"),
     "allocating std container/string construction"),
    (re.compile(r"\bFC_LOG\b"), "FC_LOG"),
]

# Blocking lock acquisition (try-lock probes are allowed: they cannot block).
LOCK_TOKENS = [
    (re.compile(r"\bfc\s*::\s*(Mutex|Shared|Reader|Writer)\w*Lock\b"),
     "scoped lock acquisition"),
    (re.compile(r"(?<!Try)\.\s*Lock\s*\("), "blocking Lock()"),
    (re.compile(r"\.\s*ReaderLock\s*\("), "blocking ReaderLock()"),
    (re.compile(r"\.\s*Wait(For|Until)?\s*\("), "condition wait"),
]

# Additionally banned inside signal handlers: stdio and friends.
SIGNAL_TOKENS = [
    (re.compile(r"\b(printf|fprintf|snprintf|sprintf|puts|fputs|fopen|"
                r"fwrite|fflush)\s*\("), "stdio"),
    (re.compile(r"\bstd\s*::\s*(cout|cerr)\b"), "iostream"),
]

MARKER = re.compile(
    r"//\s*fclint:\s*(signal-safe-begin|signal-safe-end|"
    r"hot-path-begin\(([A-Za-z0-9_]+)\)|hot-path-end)\s*$"
)


def strip_comments_and_strings(line):
    """Removes // comments, /* */ on one line, and string/char literal
    bodies so documentation and message text never trip a rule. Block
    comments spanning lines are handled by the caller."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end < 0:
                out.append("\x01")  # signal: block comment continues
                return "".join(out)
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []  # (path, line, rule, message)
        self.regions_seen = set()

    def add(self, path, line, rule, message):
        self.violations.append((path, line, rule, message))

    def lint_file(self, relpath, text):
        lines = text.split("\n")
        region = None  # None | "signal" | ("hot", name)
        region_open_line = 0
        in_block_comment = False
        is_wrapper = relpath.replace(os.sep, "/") == WRAPPER_HEADER.replace(
            os.sep, "/")

        for lineno, raw in enumerate(lines, 1):
            m = MARKER.search(raw.strip()) if "fclint:" in raw else None
            if m:
                kind = m.group(1)
                if kind == "signal-safe-begin":
                    if region is not None:
                        self.add(relpath, lineno, "markers",
                                 "nested fclint region")
                    region, region_open_line = "signal", lineno
                    self.regions_seen.add("signal-safe")
                elif kind.startswith("hot-path-begin"):
                    if region is not None:
                        self.add(relpath, lineno, "markers",
                                 "nested fclint region")
                    region, region_open_line = ("hot", m.group(2)), lineno
                    self.regions_seen.add("hot-path:" + m.group(2))
                elif kind == "signal-safe-end":
                    if region != "signal":
                        self.add(relpath, lineno, "markers",
                                 "signal-safe-end without matching begin")
                    region = None
                else:  # hot-path-end
                    if not (isinstance(region, tuple) and region[0] == "hot"):
                        self.add(relpath, lineno, "markers",
                                 "hot-path-end without matching begin")
                    region = None
                continue

            if in_block_comment:
                end = raw.find("*/")
                if end < 0:
                    continue
                raw = raw[end + 2:]
                in_block_comment = False
            code = strip_comments_and_strings(raw)
            if code.endswith("\x01"):
                in_block_comment = True
                code = code[:-1]
            if not code.strip():
                continue

            if not is_wrapper:
                m2 = RAW_PRIMITIVES.search(code)
                if m2:
                    self.add(relpath, lineno, "raw-primitive",
                             f"raw std::{m2.group(1)} -- use the annotated "
                             "fc:: wrapper from common/thread_annotations.h")

            if region is None:
                continue
            checks = list(ALLOC_TOKENS) + list(LOCK_TOKENS)
            if region == "signal":
                checks += SIGNAL_TOKENS
            label = ("signal-safe" if region == "signal"
                     else f"hot-path({region[1]})")
            for pattern, what in checks:
                if pattern.search(code):
                    self.add(relpath, lineno, label,
                             f"{what} inside {label} region")

        if region is not None:
            self.add(relpath, region_open_line, "markers",
                     "fclint region never closed")

    def lint_tree(self, subdir="src"):
        base = os.path.join(self.root, subdir)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, self.root)
                with open(path, encoding="utf-8", errors="replace") as f:
                    self.lint_file(rel, f.read())
        for region, why in REQUIRED_REGIONS.items():
            if region not in self.regions_seen:
                self.add(subdir, 0, "markers",
                         f"required fclint region '{region}' ({why}) is "
                         "missing -- markers may not be deleted")


def run_lint(root):
    linter = Linter(root)
    linter.lint_tree()
    for path, line, rule, message in linter.violations:
        print(f"{path}:{line}: [{rule}] {message}")
    if linter.violations:
        print(f"fclint: {len(linter.violations)} violation(s)")
        return 1
    print("fclint: clean")
    return 0


def self_test(root):
    """Each fixture under tools/lint/fixtures/ seeds exactly the violations
    named in its `// expect: rule` comment lines; the linter must report
    every expected rule in that file and nothing in the clean fixture."""
    fixtures = os.path.join(root, "tools", "lint", "fixtures")
    failures = 0
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith((".h", ".cc")):
            continue
        path = os.path.join(fixtures, name)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        expected = set(re.findall(r"^// expect:\s*(\S+)", text, re.M))
        linter = Linter(root)
        # Required-region checks only apply to the real tree, not fixtures.
        linter.lint_file(name, text)
        got = {rule for (_p, _l, rule, _m) in linter.violations}
        # Collapse hot-path(name) -> hot-path for fixture matching.
        got_kinds = {re.sub(r"\(.*\)", "", rule) for rule in got}
        missing = expected - got_kinds
        unexpected = got_kinds - expected
        if missing or unexpected:
            failures += 1
            print(f"SELF-TEST FAIL {name}: expected {sorted(expected)}, "
                  f"got {sorted(got_kinds)}")
            for v in linter.violations:
                print(f"  reported: {v[0]}:{v[1]}: [{v[2]}] {v[3]}")
        else:
            print(f"self-test ok: {name} ({sorted(got_kinds) or 'clean'})")
    if failures:
        print(f"fclint --self-test: {failures} fixture(s) failed")
        return 1
    print("fclint --self-test: all fixtures behave")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from here)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the linter against the seeded fixtures")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if args.self_test:
        return self_test(root)
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main())
